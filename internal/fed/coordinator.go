package fed

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lofat/internal/asm"
	"lofat/internal/attest"
	"lofat/internal/core"
	"lofat/internal/fleet"
	"lofat/internal/obs"
)

// DialFunc opens a control-plane transport to a verifier node.
type DialFunc func() (io.ReadWriteCloser, error)

// Config parameterises a Coordinator. Zero values select defaults.
type Config struct {
	// Replicas is the virtual-node count per node on the placement ring
	// (default DefaultReplicas).
	Replicas int
	// ReadTimeout / WriteTimeout are the per-phase deadlines on
	// control-plane exchanges other than sweeps (default 30s each; a
	// negative value disables that deadline).
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// SweepTimeout is the read deadline while waiting for a node's
	// sweep report — a sweep legitimately takes as long as the node's
	// slowest device rounds, so it gets its own, longer budget
	// (default 5m; negative disables).
	SweepTimeout time.Duration
	// RetryAttempts is the total number of transport attempts per node
	// exchange (default 2); RetryBackoff is the flat pre-retry delay
	// (default 50ms).
	RetryAttempts int
	RetryBackoff  time.Duration
	// BreakerThreshold trips a node's circuit breaker after this many
	// consecutive failed exchanges; the node then sits out
	// BreakerProbeAfter federated sweeps between half-open probes.
	// Default 3; negative disables. The same healthy → degraded →
	// tripped lifecycle the fleet applies per device, applied per node.
	BreakerThreshold  int
	BreakerProbeAfter int
	// Obs attaches the coordinator's observability hub: node gauges on
	// Reg, topology events (join/leave/rebalance) on Flight.
	Obs *obs.Hub
}

func (c *Config) fill() {
	if c.Replicas <= 0 {
		c.Replicas = DefaultReplicas
	}
	if c.ReadTimeout == 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.SweepTimeout == 0 {
		c.SweepTimeout = 5 * time.Minute
	}
	if c.RetryAttempts <= 0 {
		c.RetryAttempts = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerProbeAfter <= 0 {
		c.BreakerProbeAfter = 1
	}
}

func (c *Config) timeouts() attest.Timeouts {
	to := attest.Timeouts{Read: c.ReadTimeout, Write: c.WriteTimeout}
	if to.Read < 0 {
		to.Read = 0
	}
	if to.Write < 0 {
		to.Write = 0
	}
	return to
}

func (c *Config) sweepTimeouts() attest.Timeouts {
	to := c.timeouts()
	to.Read = c.SweepTimeout
	if to.Read < 0 {
		to.Read = 0
	}
	return to
}

// nodeClient is the coordinator's handle on one member node: a
// persistent control-plane connection (re-dialled on failure) plus the
// node's circuit-breaker bookkeeping. mu serialises exchanges — the
// control plane is one request/response stream per node.
type nodeClient struct {
	id   NodeID
	dial DialFunc

	mu   sync.Mutex
	conn io.ReadWriteCloser

	fails      int
	breaker    fleet.BreakerState
	breakerGen uint64
	devices    atomic.Int64 // last reported enrolment, for the gauge
}

// deviceMeta is the coordinator's own record of an enrolment — enough
// to re-enroll the device fresh if its owning node dies with the state.
type deviceMeta struct {
	Program attest.ProgramID
	Pub     ed25519.PublicKey
	Addr    string
}

// Coordinator owns the federation: the placement ring, one client per
// member node, the authoritative enrolment table, and the sweep fan-out
// that merges per-node reports into fleet verdicts.
type Coordinator struct {
	cfg     Config
	flight  *obs.Flight
	tracer  *obs.Tracer
	metrics *coordMetrics

	mu       sync.Mutex
	ring     *Ring
	clients  map[NodeID]*nodeClient
	programs map[attest.ProgramID]registerReq
	devices  map[fleet.DeviceID]deviceMeta
	sweepGen uint64
}

type coordMetrics struct {
	sweeps        obs.Counter
	nodeFailures  obs.Counter
	nodeRetries   obs.Counter
	breakerTrips  obs.Counter
	breakerResets obs.Counter
	rebalanced    obs.Counter
	transferred   obs.Counter
}

// NewCoordinator builds an empty federation.
func NewCoordinator(cfg Config) *Coordinator {
	cfg.fill()
	c := &Coordinator{
		cfg:      cfg,
		ring:     NewRing(cfg.Replicas),
		clients:  make(map[NodeID]*nodeClient),
		programs: make(map[attest.ProgramID]registerReq),
		devices:  make(map[fleet.DeviceID]deviceMeta),
		metrics:  &coordMetrics{},
	}
	if hub := cfg.Obs; hub != nil {
		c.flight = hub.Flight
		c.tracer = hub.Tracer
		if reg := hub.Reg; reg != nil {
			reg.RegisterCounter("lofat_fed_sweeps", "", "Federated sweeps completed.", &c.metrics.sweeps)
			reg.RegisterCounter("lofat_fed_node_failures", "", "Node exchanges lost after all attempts.", &c.metrics.nodeFailures)
			reg.RegisterCounter("lofat_fed_node_retries", "", "Extra node-exchange attempts beyond the first.", &c.metrics.nodeRetries)
			reg.RegisterCounter("lofat_fed_node_breaker_trips", "", "Node circuit-breaker trips.", &c.metrics.breakerTrips)
			reg.RegisterCounter("lofat_fed_node_breaker_resets", "", "Node circuit-breaker resets.", &c.metrics.breakerResets)
			reg.RegisterCounter("lofat_fed_rebalanced_devices", "", "Devices reassigned by ring changes.", &c.metrics.rebalanced)
			reg.RegisterCounter("lofat_fed_transferred_devices", "", "Reassigned devices moved with full state.", &c.metrics.transferred)
			reg.RegisterGaugeFunc("lofat_fed_nodes", "", "Member verifier nodes.", func() int64 {
				c.mu.Lock()
				defer c.mu.Unlock()
				return int64(c.ring.Len())
			})
			reg.RegisterGaugeFunc("lofat_fed_devices", "", "Devices enrolled across the federation.", func() int64 {
				c.mu.Lock()
				defer c.mu.Unlock()
				return int64(len(c.devices))
			})
		}
	}
	return c
}

// RebalanceReport summarises the device moves one ring change caused.
type RebalanceReport struct {
	// Node is the node that joined or left; Joined says which.
	Node   NodeID
	Joined bool
	// Moved devices changed owner; Transferred of those moved with
	// their full state (quarantine, breaker, counters) from the old
	// owner, and Recovered were re-enrolled fresh from coordinator
	// metadata because the old owner could not hand them off.
	Moved       int
	Transferred int
	Recovered   int
	// Errors lists devices that could not be placed at all (their new
	// owner refused the enrolment).
	Errors []string
}

// Join adds a verifier node to the federation: programs are registered
// on it, the ring is extended, and every device whose placement moved
// onto the new node is handed off (with state where possible).
func (c *Coordinator) Join(id NodeID, dial DialFunc) (*RebalanceReport, error) {
	c.mu.Lock()
	if _, dup := c.clients[id]; dup {
		c.mu.Unlock()
		return nil, fmt.Errorf("fed: node %s already a member", id)
	}
	nc := &nodeClient{id: id, dial: dial}
	progs := c.programSpecs()
	c.mu.Unlock()

	// Register every known program before the node owns any devices.
	for _, spec := range progs {
		var resp okResp
		if _, err := c.request(nc, msgRegister, spec, msgOK, &resp, c.cfg.timeouts()); err != nil {
			return nil, fmt.Errorf("fed: join %s: register program: %w", id, err)
		}
	}

	c.mu.Lock()
	old := c.ring.Clone()
	c.ring.Add(id)
	c.clients[id] = nc
	c.mu.Unlock()
	c.recordTopology(obs.KindNodeJoin, id, "")
	rep := c.rebalance(old, id, true)
	return rep, nil
}

// Leave removes a node from the federation, first draining its devices
// to their new owners (with state while the node is still reachable).
func (c *Coordinator) Leave(id NodeID) (*RebalanceReport, error) {
	c.mu.Lock()
	nc, ok := c.clients[id]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("fed: node %s is not a member", id)
	}
	old := c.ring.Clone()
	c.ring.Remove(id)
	c.mu.Unlock()
	rep := c.rebalance(old, id, false)
	c.mu.Lock()
	delete(c.clients, id)
	c.mu.Unlock()
	nc.close()
	c.recordTopology(obs.KindNodeLeave, id, "")
	return rep, nil
}

// Rejoin reattaches a node that crashed and restarted without changing
// the ring: the client connection and breaker are reset, programs are
// re-registered (idempotent node-side; a warm node adopts its restored
// devices here), and any device the ring assigns to the node that it
// does not hold — a cold restart, or enrolments that happened while it
// was down are NOT possible (the ring still owned them), but a wiped
// data directory is — is re-enrolled fresh from coordinator metadata.
func (c *Coordinator) Rejoin(id NodeID, dial DialFunc) error {
	c.mu.Lock()
	if !c.ring.Has(id) {
		c.mu.Unlock()
		return fmt.Errorf("fed: node %s is not a member (use Join)", id)
	}
	if old := c.clients[id]; old != nil {
		old.close()
	}
	nc := &nodeClient{id: id, dial: dial}
	c.clients[id] = nc
	progs := c.programSpecs()
	owned := c.ownedBy(id)
	c.mu.Unlock()

	for _, spec := range progs {
		var resp okResp
		if _, err := c.request(nc, msgRegister, spec, msgOK, &resp, c.cfg.timeouts()); err != nil {
			return fmt.Errorf("fed: rejoin %s: register program: %w", id, err)
		}
	}
	for _, dev := range owned {
		var st stateResp
		if _, err := c.request(nc, msgGet, deviceReq{Device: dev.id}, msgState, &st, c.cfg.timeouts()); err != nil {
			return fmt.Errorf("fed: rejoin %s: query device %q: %w", id, dev.id, err)
		}
		if st.Found {
			continue
		}
		var ok okResp
		if _, err := c.request(nc, msgEnroll, enrollReq{State: freshState(dev.id, dev.meta)}, msgOK, &ok, c.cfg.timeouts()); err != nil {
			return fmt.Errorf("fed: rejoin %s: re-enroll device %q: %w", id, dev.id, err)
		}
	}
	c.recordTopology(obs.KindNodeJoin, id, "rejoin")
	return nil
}

type ownedDevice struct {
	id   fleet.DeviceID
	meta deviceMeta
}

// ownedBy lists devices the ring assigns to node, sorted. Caller holds
// c.mu.
func (c *Coordinator) ownedBy(node NodeID) []ownedDevice {
	var out []ownedDevice
	for id, meta := range c.devices {
		if owner, ok := c.ring.Assign(string(id)); ok && owner == node {
			out = append(out, ownedDevice{id: id, meta: meta})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// programSpecs lists registered program specs. Caller holds c.mu.
func (c *Coordinator) programSpecs() []registerReq {
	out := make([]registerReq, 0, len(c.programs))
	for _, spec := range c.programs {
		out = append(out, spec)
	}
	return out
}

// freshState is the zero-history DeviceState of a new (or recovered)
// enrolment.
func freshState(id fleet.DeviceID, meta deviceMeta) fleet.DeviceState {
	return fleet.DeviceState{ID: id, Addr: meta.Addr, Program: meta.Program, Pub: meta.Pub}
}

// rebalance moves every device whose owner changed between the old and
// new ring. For each moved device the coordinator first tries a
// stateful hand-off — Transfer from the old owner, enroll-with-state on
// the new — and falls back to a fresh enrolment from its own metadata
// when the old owner is gone or failing (the changed node, on a leave,
// may already be dead; that must not strand its devices).
func (c *Coordinator) rebalance(old *Ring, changed NodeID, joined bool) *RebalanceReport {
	rep := &RebalanceReport{Node: changed, Joined: joined}
	c.mu.Lock()
	type move struct {
		id       fleet.DeviceID
		meta     deviceMeta
		from, to NodeID
	}
	var moves []move
	for id, meta := range c.devices {
		oldOwner, okOld := old.Assign(string(id))
		newOwner, okNew := c.ring.Assign(string(id))
		if !okNew {
			continue // ring emptied; nothing to place onto
		}
		if okOld && oldOwner == newOwner {
			continue
		}
		moves = append(moves, move{id: id, meta: meta, from: oldOwner, to: newOwner})
	}
	sort.Slice(moves, func(i, j int) bool { return moves[i].id < moves[j].id })
	clients := make(map[NodeID]*nodeClient, len(c.clients))
	for id, nc := range c.clients {
		clients[id] = nc
	}
	c.mu.Unlock()

	for _, mv := range moves {
		rep.Moved++
		c.metrics.rebalanced.Inc()
		state := freshState(mv.id, mv.meta)
		stateful := false
		if from := clients[mv.from]; from != nil {
			var st stateResp
			if _, err := c.request(from, msgTransfer, deviceReq{Device: mv.id}, msgState, &st, c.cfg.timeouts()); err == nil && st.Found {
				state = st.State
				stateful = true
			}
		}
		to := clients[mv.to]
		if to == nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("%s: new owner %s has no client", mv.id, mv.to))
			continue
		}
		var ok okResp
		if _, err := c.request(to, msgEnroll, enrollReq{State: state}, msgOK, &ok, c.cfg.timeouts()); err != nil {
			rep.Errors = append(rep.Errors, fmt.Sprintf("%s: enroll on %s: %v", mv.id, mv.to, err))
			continue
		}
		if stateful {
			rep.Transferred++
			c.metrics.transferred.Inc()
		} else {
			rep.Recovered++
		}
		if c.flight.Enabled() {
			c.flight.Record(obs.Event{Device: string(mv.id), Kind: obs.KindRebalance,
				Detail: fmt.Sprintf("%s → %s", mv.from, mv.to)})
		}
	}
	return rep
}

// recordTopology logs a node join/leave flight event.
func (c *Coordinator) recordTopology(kind obs.EventKind, id NodeID, detail string) {
	if c.flight.Enabled() {
		c.flight.Record(obs.Event{Device: string(id), Kind: kind, Detail: detail})
	}
}

// RegisterProgram registers a firmware image on every member node and
// remembers the spec for nodes that join later.
func (c *Coordinator) RegisterProgram(prog *asm.Program, devCfg core.Config, inputs [][]uint32) (attest.ProgramID, error) {
	spec := registerReq{Prog: prog, DevCfg: devCfg, Inputs: inputs}
	clients := c.clientList()
	if len(clients) == 0 {
		return attest.ProgramID{}, fmt.Errorf("fed: no member nodes")
	}
	var id attest.ProgramID
	for _, nc := range clients {
		var resp okResp
		if _, err := c.request(nc, msgRegister, spec, msgOK, &resp, c.cfg.timeouts()); err != nil {
			return attest.ProgramID{}, fmt.Errorf("fed: register on %s: %w", nc.id, err)
		}
		id = resp.Program
	}
	c.mu.Lock()
	c.programs[id] = spec
	c.mu.Unlock()
	return id, nil
}

// Enroll places a device on its ring-assigned node.
func (c *Coordinator) Enroll(id fleet.DeviceID, prog attest.ProgramID, pub ed25519.PublicKey, addr string) error {
	c.mu.Lock()
	if _, dup := c.devices[id]; dup {
		c.mu.Unlock()
		return fmt.Errorf("fed: device %q already enrolled", id)
	}
	owner, ok := c.ring.Assign(string(id))
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("fed: no member nodes")
	}
	nc := c.clients[owner]
	meta := deviceMeta{Program: prog, Pub: append(ed25519.PublicKey(nil), pub...), Addr: addr}
	c.mu.Unlock()

	var resp okResp
	if _, err := c.request(nc, msgEnroll, enrollReq{State: freshState(id, meta)}, msgOK, &resp, c.cfg.timeouts()); err != nil {
		return fmt.Errorf("fed: enroll %q on %s: %w", id, owner, err)
	}
	c.mu.Lock()
	c.devices[id] = meta
	c.mu.Unlock()
	return nil
}

// Owner reports the node the ring currently assigns a device to.
func (c *Coordinator) Owner(id fleet.DeviceID) (NodeID, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, known := c.devices[id]; !known {
		return "", false
	}
	return c.ring.Assign(string(id))
}

// Device queries a device's registry state from its owning node.
func (c *Coordinator) Device(id fleet.DeviceID) (fleet.DeviceState, NodeID, error) {
	c.mu.Lock()
	owner, ok := c.ring.Assign(string(id))
	nc := c.clients[owner]
	c.mu.Unlock()
	if !ok || nc == nil {
		return fleet.DeviceState{}, "", fmt.Errorf("fed: no owner for device %q", id)
	}
	var st stateResp
	if _, err := c.request(nc, msgGet, deviceReq{Device: id}, msgState, &st, c.cfg.timeouts()); err != nil {
		return fleet.DeviceState{}, owner, err
	}
	if !st.Found {
		return fleet.DeviceState{}, owner, fmt.Errorf("fed: device %q not held by node %s", id, owner)
	}
	return st.State, owner, nil
}

// Release lifts a device's quarantine on its owning node.
func (c *Coordinator) Release(id fleet.DeviceID) error {
	c.mu.Lock()
	owner, ok := c.ring.Assign(string(id))
	nc := c.clients[owner]
	c.mu.Unlock()
	if !ok || nc == nil {
		return fmt.Errorf("fed: no owner for device %q", id)
	}
	var st stateResp
	if _, err := c.request(nc, msgRelease, deviceReq{Device: id}, msgState, &st, c.cfg.timeouts()); err != nil {
		return err
	}
	if !st.Found {
		return fmt.Errorf("fed: device %q not held by node %s", id, owner)
	}
	return nil
}

// Nodes lists member node IDs, sorted.
func (c *Coordinator) Nodes() []NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.Nodes()
}

// FleetSize reports the coordinator's enrolment count.
func (c *Coordinator) FleetSize() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.devices)
}

// clientList snapshots the member clients sorted by node ID.
func (c *Coordinator) clientList() []*nodeClient {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*nodeClient, 0, len(c.clients))
	for _, nc := range c.clients {
		out = append(out, nc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Sweep fans one federated sweep out to every member node for the given
// program and merges their reports into a single fleet verdict. Nodes
// sweep concurrently; a node that fails its exchange (after the
// configured retries) is attributed in the verdict rather than sinking
// the sweep, and its breaker advances so later sweeps skip it until a
// half-open probe succeeds.
func (c *Coordinator) Sweep(prog attest.ProgramID, input []uint32, streamed bool) (*FleetVerdict, error) {
	clients := c.clientList()
	if len(clients) == 0 {
		return nil, fmt.Errorf("fed: no member nodes")
	}
	gen := atomic.AddUint64(&c.sweepGen, 1)
	start := time.Now()
	reports := make([]NodeReport, len(clients))
	var wg sync.WaitGroup
	for i, nc := range clients {
		wg.Add(1)
		go func(i int, nc *nodeClient) {
			defer wg.Done()
			reports[i] = c.sweepNode(nc, prog, input, streamed, gen)
		}(i, nc)
	}
	wg.Wait()
	c.metrics.sweeps.Inc()
	return mergeVerdict(prog, input, reports, time.Since(start)), nil
}

// sweepNode runs one node's sweep exchange with breaker gating.
func (c *Coordinator) sweepNode(nc *nodeClient, prog attest.ProgramID, input []uint32, streamed bool, gen uint64) NodeReport {
	rep := NodeReport{Node: nc.id}
	skip, probe := nc.breakerCheck(gen, c.cfg.BreakerProbeAfter)
	if skip {
		rep.Skipped = true
		return rep
	}
	rep.Probe = probe
	var nodeRep NodeReport
	attempts, err := c.request(nc, msgSweep, sweepReq{Program: prog, Input: input, Streamed: streamed}, msgReport, &nodeRep, c.cfg.sweepTimeouts())
	rep.Attempts = attempts
	if err != nil {
		rep.Err = err.Error()
		var ne *NodeError
		if !errors.As(err, &ne) {
			// Transport failure: breaker evidence. A NodeError is not —
			// the node answered; it just refused the request.
			c.metrics.nodeFailures.Inc()
			if tripped := nc.advanceBreaker(c.cfg.BreakerThreshold, gen); tripped {
				c.metrics.breakerTrips.Inc()
				c.recordTopology(obs.KindNodeLeave, nc.id, "breaker tripped: "+err.Error())
			}
		}
		return rep
	}
	if reset := nc.recordSuccess(); reset {
		c.metrics.breakerResets.Inc()
	}
	nodeRep.Probe = probe
	nodeRep.Attempts = attempts
	nc.devices.Store(int64(nodeRep.Devices))
	return nodeRep
}

// request runs one exchange against a node with bounded retries on
// transport failures, re-dialling the persistent connection per
// attempt. It returns the attempts spent.
func (c *Coordinator) request(nc *nodeClient, reqTyp byte, req any, respTyp byte, resp any, to attest.Timeouts) (int, error) {
	if nc == nil {
		return 0, fmt.Errorf("fed: no client for node")
	}
	nc.mu.Lock()
	defer nc.mu.Unlock()
	var err error
	for attempt := 1; attempt <= c.cfg.RetryAttempts; attempt++ {
		if attempt > 1 {
			c.metrics.nodeRetries.Inc()
			time.Sleep(c.cfg.RetryBackoff)
		}
		if nc.conn == nil {
			nc.conn, err = nc.dial()
			if err != nil {
				err = fmt.Errorf("fed: dial node %s: %w", nc.id, err)
				continue
			}
		}
		err = exchange(nc.conn, to, nc.id, reqTyp, req, respTyp, resp)
		if err == nil {
			return attempt, nil
		}
		var te *attest.TransportError
		if errors.As(err, &te) {
			// The stream is dead or desynchronised; next attempt re-dials.
			nc.conn.Close()
			nc.conn = nil
			continue
		}
		// Node-level refusal or protocol mismatch: not retryable.
		return attempt, err
	}
	return c.cfg.RetryAttempts, err
}

// breakerCheck gates one sweep exchange on the node's breaker.
func (nc *nodeClient) breakerCheck(gen uint64, probeAfter int) (skip, probe bool) {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	if nc.breaker != fleet.BreakerTripped {
		return false, false
	}
	if gen > nc.breakerGen+uint64(probeAfter) {
		return false, true
	}
	return true, false
}

// advanceBreaker folds one failed exchange into the node breaker; it
// reports whether this failure newly tripped it.
func (nc *nodeClient) advanceBreaker(threshold int, gen uint64) bool {
	if threshold < 0 {
		return false
	}
	nc.mu.Lock()
	defer nc.mu.Unlock()
	nc.fails++
	switch {
	case nc.breaker == fleet.BreakerTripped:
		nc.breakerGen = gen
		return false
	case nc.fails >= threshold:
		nc.breaker = fleet.BreakerTripped
		nc.breakerGen = gen
		return true
	default:
		nc.breaker = fleet.BreakerDegraded
		return false
	}
}

// recordSuccess resets the node breaker after a completed exchange; it
// reports whether an open breaker closed.
func (nc *nodeClient) recordSuccess() (reset bool) {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	reset = nc.breaker == fleet.BreakerTripped
	nc.fails = 0
	nc.breaker = fleet.BreakerHealthy
	return reset
}

func (nc *nodeClient) close() {
	nc.mu.Lock()
	defer nc.mu.Unlock()
	if nc.conn != nil {
		nc.conn.Close()
		nc.conn = nil
	}
}

// NodeBreaker reports a node's breaker position.
func (c *Coordinator) NodeBreaker(id NodeID) (fleet.BreakerState, bool) {
	c.mu.Lock()
	nc := c.clients[id]
	c.mu.Unlock()
	if nc == nil {
		return fleet.BreakerHealthy, false
	}
	nc.mu.Lock()
	defer nc.mu.Unlock()
	return nc.breaker, true
}

// Close tears down every node connection (the nodes themselves keep
// running; they are independent processes).
func (c *Coordinator) Close() {
	for _, nc := range c.clientList() {
		nc.close()
	}
}
