package core

import (
	"testing"

	"lofat/internal/cpu"
	"lofat/internal/filter"
	"lofat/internal/hashengine"
	"lofat/internal/monitor"
)

// figure4Program is the paper's Figure 4 pseudo-code laid out exactly as
// its CFG: a while loop containing an if-else. cond1 iterates s0 times;
// cond2 selects then/else from the iteration parity.
const figure4Program = `
main:                       # N1
	li   s0, 6              # loop trip count
N2:	beqz s0, N7             # while (cond1): exit when s0 == 0
N3:	andi t0, s0, 1
	beqz t0, N5             # if (cond2): even -> else (N5)
N4:	addi s1, s1, 10         # then: bb_4
	j    N6
N5:	addi s1, s1, 1          # else: bb_5
N6:	addi s0, s0, -1         # bb_6
	j    N2                 # back-edge
N7:	li   a7, 93             # bb_7: exit
	ecall
`

// runWithDevice executes a program with a LO-FAT device attached to the
// trace port and returns the finalized measurement and the machine.
func runWithDevice(t *testing.T, src string, cfg Config, input []uint32) (Measurement, *cpu.Machine) {
	t.Helper()
	m := cpu.MustLoadSource(src)
	d := NewDevice(cfg)
	m.CPU.Trace = d
	m.CPU.Input = input
	if err := m.CPU.Run(10_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return d.Finalize(), m
}

func TestFigure4EndToEnd(t *testing.T) {
	meas, _ := runWithDevice(t, figure4Program, Config{}, nil)

	if len(meas.Loops) != 1 {
		t.Fatalf("loops = %d, want 1:\n%v", len(meas.Loops), meas.Loops)
	}
	r := meas.Loops[0]

	// Iteration 1 (s0=6) runs before the loop is detected (first
	// back-edge); iterations 2..6 are encoded: s0=5 odd -> then(N4),
	// s0=4 even -> else(N5), alternating.
	if r.Iterations != 5 {
		t.Errorf("iterations = %d, want 5", r.Iterations)
	}
	if len(r.Paths) != 2 {
		t.Fatalf("distinct paths = %d, want 2: %v", len(r.Paths), r)
	}
	// First encoded iteration is s0=5: odd, cond2 -> N4 (then):
	// N2 beqz not taken (0), N3 beqz not taken (0), N4 j (1), N6 j (1)
	// = "0011" — the paper's bold path.
	if got := r.Paths[0].Code.String(); got != "0011" {
		t.Errorf("first path = %q, want 0011 (bold)", got)
	}
	// Second: s0=4: even -> N5 (else): 0,1,1 = "011" — the dashed path.
	if got := r.Paths[1].Code.String(); got != "011" {
		t.Errorf("second path = %q, want 011 (dashed)", got)
	}
	// Counts: iterations 2..6 = s0 5,4,3,2,1 -> odd 3x (0011), even 2x.
	if r.Paths[0].Count != 3 || r.Paths[1].Count != 2 {
		t.Errorf("counts = %d/%d, want 3/2", r.Paths[0].Count, r.Paths[1].Count)
	}
	// The exit traversal N2 -> N7 is the partial path "1" (beqz taken).
	if got := r.Partial.String(); got != "1" {
		t.Errorf("partial = %q, want 1", got)
	}

	// No processor stalls, ever (the headline claim).
	if meas.Stats.ProcessorStallCycles != 0 {
		t.Errorf("stall cycles = %d", meas.Stats.ProcessorStallCycles)
	}
	// Compression did real work: repeated paths suppressed hashing.
	if meas.Stats.DedupedPairs == 0 {
		t.Error("no pairs deduplicated over 5 iterations with 2 paths")
	}
	if meas.Stats.Engine.Dropped != 0 {
		t.Errorf("engine dropped %d pairs", meas.Stats.Engine.Dropped)
	}
}

// Determinism: identical runs produce identical measurements.
func TestMeasurementDeterminism(t *testing.T) {
	m1, _ := runWithDevice(t, figure4Program, Config{}, nil)
	m2, _ := runWithDevice(t, figure4Program, Config{}, nil)
	if m1.Hash != m2.Hash {
		t.Error("hash differs across identical runs")
	}
	if len(m1.Loops) != len(m2.Loops) {
		t.Fatal("metadata differs across identical runs")
	}
}

// Sensitivity: a different control-flow path yields a different A or L.
func TestMeasurementSensitivity(t *testing.T) {
	progN := func(n string) string {
		return `
main:
	li   s0, ` + n + `
loop:
	addi s0, s0, -1
	bnez s0, loop
	li   a7, 93
	ecall
`
	}
	m5, _ := runWithDevice(t, progN("5"), Config{}, nil)
	m6, _ := runWithDevice(t, progN("6"), Config{}, nil)

	// Same unique loop path either way, so A is identical — iteration
	// count differences are visible ONLY in L. This is precisely why
	// the paper needs the auxiliary metadata (attack class 2).
	if m5.Hash != m6.Hash {
		t.Log("note: hash differs (li expansion changed addresses)")
	}
	if len(m5.Loops) != 1 || len(m6.Loops) != 1 {
		t.Fatal("expected one loop record each")
	}
	if m5.Loops[0].Iterations == m6.Loops[0].Iterations {
		t.Error("iteration counts equal for different trip counts")
	}
}

// The device must see and account every control-flow event
// (completeness, §6.3): counted independently against the binary, and
// every event ends up either hashed or deduplicated — none vanish.
func TestEventCompleteness(t *testing.T) {
	meas, mach := runWithDevice(t, figure4Program, Config{}, nil)

	var independent uint64
	mach.CPU.Reset(mach.Entry, mach.StackTop)
	mach.CPU.Trace = nil
	for !mach.CPU.Halted {
		w, err := mach.Mem.Fetch(mach.CPU.PC)
		if err != nil {
			t.Fatal(err)
		}
		if op := w & 0x7F; op == 0x63 || op == 0x6F || op == 0x67 {
			independent++
		}
		if err := mach.CPU.Step(); err != nil {
			t.Fatal(err)
		}
	}

	st := meas.Stats
	if st.ControlFlowEvents != independent {
		t.Errorf("device saw %d events, independent count %d",
			st.ControlFlowEvents, independent)
	}
	if st.HashedPairs+st.DedupedPairs != st.ControlFlowEvents {
		t.Errorf("hashed %d + deduped %d != events %d",
			st.HashedPairs, st.DedupedPairs, st.ControlFlowEvents)
	}
}

// Internal latency: 2 cycles per tracked branch, 5 per loop exit; the
// device lag stays bounded and no CPU cycles are consumed.
func TestInternalLatencyAccounting(t *testing.T) {
	meas, mach := runWithDevice(t, figure4Program, Config{}, nil)
	st := meas.Stats
	if st.InternalLatencyCycles == 0 {
		t.Error("no internal latency recorded")
	}
	if st.MaxLagCycles == 0 || st.MaxLagCycles > 64 {
		t.Errorf("max lag = %d, want small nonzero", st.MaxLagCycles)
	}
	// CPU cycle count with the device attached equals the count
	// without it: zero overhead by construction, asserted end to end.
	withDevice := mach.CPU.Cycle
	m2 := cpu.MustLoadSource(figure4Program)
	if err := m2.CPU.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if m2.CPU.Cycle != withDevice {
		t.Errorf("cycles with device %d != without %d", withDevice, m2.CPU.Cycle)
	}
}

// Nested loops end to end: a 3x4 nest produces two loop records per
// outer iteration pattern with correct counts.
func TestNestedLoopsEndToEnd(t *testing.T) {
	src := `
main:
	li   s0, 3          # outer count
outer:
	li   s1, 4          # inner count
inner:
	addi s1, s1, -1
	bnez s1, inner      # inner back-edge
	addi s0, s0, -1
	bnez s0, outer      # outer back-edge
	li   a7, 93
	ecall
`
	meas, _ := runWithDevice(t, src, Config{}, nil)
	// Inner loop exits 3 times (one per outer iteration) -> 3 inner
	// records; outer exits once -> 1 record. Total 4, inner first.
	if len(meas.Loops) != 4 {
		t.Fatalf("loop records = %d, want 4:\n%v", len(meas.Loops), meas.Loops)
	}
	// Per activation the inner back-edge fires 3 times (s1 = 3, 2, 1):
	// the first firing is the detection point, so 2 iterations are
	// encoded; the final not-taken bnez is the partial exit path "0".
	for i, r := range meas.Loops[:3] {
		if r.Iterations != 2 {
			t.Errorf("inner record %d iterations = %d, want 2", i, r.Iterations)
		}
		if got := r.Partial.String(); got != "0" {
			t.Errorf("inner record %d partial = %q, want 0", i, got)
		}
	}
	// Outer back-edge fires twice (s0 = 2, 1): 1 encoded iteration.
	if meas.Loops[3].Iterations != 1 {
		t.Errorf("outer iterations = %d, want 1", meas.Loops[3].Iterations)
	}
}

// Indirect calls inside a loop: targets land in the CAM and the loop
// record, and different target sequences change path IDs.
func TestIndirectInLoopEndToEnd(t *testing.T) {
	src := `
	.data
table:
	.word f0, f1
	.text
main:
	li   s0, 4
	la   s2, table
loop:
	andi t0, s0, 1
	slli t0, t0, 2
	add  t1, s2, t0
	lw   t2, 0(t1)
	jalr ra, 0(t2)      # indirect call, alternating targets
	addi s0, s0, -1
	bnez s0, loop
	li   a7, 93
	ecall
f0:
	ret
f1:
	ret
`
	meas, mach := runWithDevice(t, src, Config{}, nil)
	if len(meas.Loops) != 1 {
		t.Fatalf("loops = %d:\n%v", len(meas.Loops), meas.Loops)
	}
	r := meas.Loops[0]
	// Returns are indirect transfers too, so the CAM holds f0, f1 AND
	// the common return site: 3 targets.
	if len(r.IndirectTargets) != 3 {
		t.Fatalf("indirect targets = %#v, want 3 (f0, f1, return site)", r.IndirectTargets)
	}
	f0 := mach.Program.Labels["f0"]
	f1 := mach.Program.Labels["f1"]
	seen := map[uint32]bool{}
	for _, tgt := range r.IndirectTargets {
		seen[tgt] = true
	}
	if !seen[f0] || !seen[f1] {
		t.Errorf("CAM %#v missing f0=%#x or f1=%#x", r.IndirectTargets, f0, f1)
	}
	// Iterations 2..4 alternate targets: two distinct paths.
	if len(r.Paths) != 2 {
		t.Errorf("paths = %+v, want 2 distinct (different indirect codes)", r.Paths)
	}
}

// Reset allows device reuse with identical results.
func TestDeviceReset(t *testing.T) {
	m := cpu.MustLoadSource(figure4Program)
	d := NewDevice(Config{})
	m.CPU.Trace = d
	if err := m.CPU.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	h1 := d.Finalize().Hash

	d.Reset()
	m.CPU.Reset(m.Entry, m.StackTop)
	if err := m.CPU.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	h2 := d.Finalize().Hash
	if h1 != h2 {
		t.Error("measurement differs after Reset")
	}
	// Finalize is idempotent.
	if d.Finalize().Hash != h2 {
		t.Error("Finalize not idempotent")
	}
}

// Config plumbing reaches the subunits.
func TestConfigPlumbing(t *testing.T) {
	cfg := Config{
		Filter:  filter.Config{MaxDepth: 1},
		Monitor: monitor.Config{MaxBranchesPerPath: 2},
		Engine:  hashengine.Config{FIFODepth: 2},
	}
	meas, _ := runWithDevice(t, figure4Program, cfg, nil)
	// ℓ=2: the 4-symbol Figure 4 iterations overflow.
	r := meas.Loops[0]
	for _, p := range r.Paths {
		if !p.Code.Overflow {
			t.Errorf("path %v not overflowed with ℓ=2", p.Code)
		}
	}
}
