package core

import (
	"testing"

	"lofat/internal/cpu"
	"lofat/internal/monitor"
)

// regionProgram has a measured hot function and unmeasured glue code.
const regionProgram = `
main:
	li   s2, 2
outer_glue:
	call hot
	addi s2, s2, -1
	bnez s2, outer_glue
	li   a7, 93
	ecall
hot:
	li   s0, 4
hot_loop:
	addi s0, s0, -1
	bnez s0, hot_loop
	ret
hot_end:
	nop
`

func TestRegionGatesEvents(t *testing.T) {
	mach := cpu.MustLoadSource(regionProgram)
	hot := mach.Program.Labels["hot"]
	hotEnd := mach.Program.Labels["hot_end"]

	// Whole-program measurement for comparison.
	full, _ := runWithDevice(t, regionProgram, Config{}, nil)

	// Region-limited measurement.
	cfgR := Config{Region: Region{Start: hot, End: hotEnd}}
	regionMeas, _ := runWithDevice(t, regionProgram, cfgR, nil)

	if regionMeas.Stats.ControlFlowEvents >= full.Stats.ControlFlowEvents {
		t.Errorf("region events %d not fewer than full %d",
			regionMeas.Stats.ControlFlowEvents, full.Stats.ControlFlowEvents)
	}
	// The glue loop (outer_glue) lies outside the region: only the hot
	// loop may appear in metadata.
	for _, r := range regionMeas.Loops {
		if r.Entry < hot || r.Entry >= hotEnd {
			t.Errorf("loop %v outside attested region [%#x,%#x)", r, hot, hotEnd)
		}
	}
	// The hot loop runs twice (two calls): two loop records.
	if len(regionMeas.Loops) != 2 {
		t.Fatalf("region loops = %d, want 2:\n%v", len(regionMeas.Loops), regionMeas.Loops)
	}
	// Determinism under region config.
	again, _ := runWithDevice(t, regionProgram, cfgR, nil)
	if again.Hash != regionMeas.Hash {
		t.Error("region measurement not deterministic")
	}
	// And it differs from the full measurement.
	if regionMeas.Hash == full.Hash {
		t.Error("region hash equals full-program hash")
	}
}

func TestRegionContains(t *testing.T) {
	if !(Region{}).Contains(0x1234) {
		t.Error("zero region must contain everything")
	}
	r := Region{Start: 0x100, End: 0x200}
	for pc, want := range map[uint32]bool{0x100: true, 0x1FC: true, 0x200: false, 0xFC: false} {
		if r.Contains(pc) != want {
			t.Errorf("Contains(%#x) = %v", pc, !want)
		}
	}
}

// Ablation flag: dedup off hashes every iteration and must dominate the
// deduplicated count, while the metadata stays identical.
func TestDisableDedup(t *testing.T) {
	on, _ := runWithDevice(t, figure4Program, Config{}, nil)
	off, _ := runWithDevice(t, figure4Program,
		Config{Monitor: monitor.Config{DisableDedup: true}}, nil)

	if off.Stats.HashedPairs <= on.Stats.HashedPairs {
		t.Errorf("dedup-off hashed %d <= dedup-on %d",
			off.Stats.HashedPairs, on.Stats.HashedPairs)
	}
	if off.Stats.HashedPairs != on.Stats.HashedPairs+on.Stats.DedupedPairs {
		t.Errorf("dedup-off hashed %d != on %d + deduped %d",
			off.Stats.HashedPairs, on.Stats.HashedPairs, on.Stats.DedupedPairs)
	}
	// Path counters are configuration-independent.
	if len(off.Loops) != len(on.Loops) {
		t.Fatal("loop records differ")
	}
	for i := range on.Loops {
		if on.Loops[i].Iterations != off.Loops[i].Iterations {
			t.Error("iteration counts differ between dedup modes")
		}
		for j := range on.Loops[i].Paths {
			if on.Loops[i].Paths[j].Count != off.Loops[i].Paths[j].Count {
				t.Error("path counts differ between dedup modes")
			}
		}
	}
}
