package core

import (
	"testing"

	"lofat/internal/filter"
)

// A 4-deep nest exceeds the paper's tracked depth of 3: the innermost
// loop is not tracked (its events stay attributed to level 3), the
// measurement stays deterministic, and nothing is lost.
func TestNestingBeyondMaxDepth(t *testing.T) {
	src := `
main:
	li   s2, 2
l1:
	li   s3, 2
l2:
	li   s4, 2
l3:
	li   s5, 2
l4:
	addi s5, s5, -1
	bnez s5, l4
	addi s4, s4, -1
	bnez s4, l3
	addi s3, s3, -1
	bnez s3, l2
	addi s2, s2, -1
	bnez s2, l1
	li   a7, 93
	ecall
`
	meas, _ := runWithDevice(t, src, Config{}, nil)
	st := meas.Stats
	if st.HashedPairs+st.DedupedPairs != st.ControlFlowEvents {
		t.Errorf("conservation broken: %d+%d != %d",
			st.HashedPairs, st.DedupedPairs, st.ControlFlowEvents)
	}
	// With MaxDepth=3 the l4 loop never pushes: no record may have the
	// l4 entry... l4 is the INNERMOST lexical loop but the FIRST
	// back-edge to fire, so it occupies stack level 1..3 together with
	// l3 and l2; the OUTERMOST loop l1 is the one left untracked when
	// the stack is full. Verify depth never exceeded 3 via the filter
	// stats instead.
	if st.LoopsDetected != st.LoopExits {
		t.Errorf("pushes %d != exits %d", st.LoopsDetected, st.LoopExits)
	}

	// With a deeper filter, more loops are tracked and more pairs
	// deduplicate.
	meas4, _ := runWithDevice(t, src, Config{Filter: filter.Config{MaxDepth: 4}}, nil)
	if meas4.Stats.DedupedPairs < meas.Stats.DedupedPairs {
		t.Errorf("depth 4 deduped %d < depth 3 deduped %d",
			meas4.Stats.DedupedPairs, meas.Stats.DedupedPairs)
	}
	// Both configurations are internally consistent and deterministic.
	again, _ := runWithDevice(t, src, Config{}, nil)
	if again.Hash != meas.Hash {
		t.Error("deep-nest measurement not deterministic")
	}
}
