// Package core integrates the LO-FAT hardware units — branch filter,
// loop monitor, hash engine — into the attestation device of Figure 3.
// The device taps the core's retired-instruction trace port and runs in
// parallel with the pipeline: it never stalls the processor (the
// headline §6.1 result), while its internal latencies (2 cycles for
// branch/loop-status tracking, 5 cycles at loop exit for path-ID
// completion and counter memory update) are accounted and reported.
package core

import (
	"sync"

	"lofat/internal/cpu"
	"lofat/internal/filter"
	"lofat/internal/hashengine"
	"lofat/internal/monitor"
	"lofat/internal/obs"
	"lofat/internal/trace"
)

// Region restricts attestation to a code sub-range [Start, End): only
// control-flow events whose source PC lies inside are measured. This is
// the function-granular attestation mode of C-FLAT ("the attested code
// segment" in §4), selected entirely in hardware configuration — the
// binary is still not instrumented. The zero Region attests everything.
type Region struct {
	Start uint32
	End   uint32
}

// Contains reports whether pc is attested under the region (the zero
// region attests all addresses).
//
//lofat:zeroalloc
func (r Region) Contains(pc uint32) bool {
	if r.Start == 0 && r.End == 0 {
		return true
	}
	return pc >= r.Start && pc < r.End
}

// Config aggregates the hardware parameters of all LO-FAT units.
type Config struct {
	Filter  filter.Config
	Monitor monitor.Config
	Engine  hashengine.Config

	// Region restricts attestation to a code range (zero = whole
	// program).
	Region Region

	// BranchTrackCycles is the internal latency for branch instruction
	// and loop status tracking (paper: 2).
	BranchTrackCycles uint64
	// LoopExitCycles is the internal latency at loop exit for path ID
	// generation and loop counter memory access/update (paper: 5).
	LoopExitCycles uint64

	// IRQ is the deterministic interrupt schedule the attested core runs
	// under; the zero value means interrupt-free execution. It is part
	// of the device configuration because the expected measurement
	// depends on it: the verifier must replay the identical schedule to
	// derive the golden (A, L), and the expectation-cache key (which
	// renders the whole Config) must distinguish schedules.
	IRQ cpu.IRQSchedule
}

// DefaultConfig matches the paper's prototype parameters.
var DefaultConfig = Config{
	BranchTrackCycles: 2,
	LoopExitCycles:    5,
}

func (c *Config) fill() {
	if c.BranchTrackCycles == 0 {
		c.BranchTrackCycles = DefaultConfig.BranchTrackCycles
	}
	if c.LoopExitCycles == 0 {
		c.LoopExitCycles = DefaultConfig.LoopExitCycles
	}
}

// Stats aggregates the device-side counters for §6 evaluation.
type Stats struct {
	// ProcessorStallCycles is the number of cycles LO-FAT stalled the
	// attested software. Structurally zero: the device only observes
	// the trace port. Reported to make the claim checkable.
	ProcessorStallCycles uint64
	// ControlFlowEvents is the number of branch/jump/return events.
	ControlFlowEvents uint64
	// LoopEvents is the subset attributed to active loops.
	LoopEvents uint64
	// HashedPairs / DedupedPairs split measured edges into hashed vs
	// suppressed-by-loop-dedup.
	HashedPairs  uint64
	DedupedPairs uint64
	// NewPaths / RepeatedPaths count loop path-ID allocations vs hits.
	NewPaths      uint64
	RepeatedPaths uint64
	// LoopsDetected / LoopExits count filter push/pop operations.
	LoopsDetected uint64
	LoopExits     uint64
	// InternalLatencyCycles is the device-internal work time (branch
	// tracking + loop exits); it overlaps processor execution.
	InternalLatencyCycles uint64
	// MaxLagCycles is the furthest the device pipeline ever ran behind
	// the processor, bounding the FIFO/buffer sizing.
	MaxLagCycles uint64
	// DrainCycles is the post-execution flush time before the final
	// digest is available.
	DrainCycles uint64
	// Engine carries the hash engine counters.
	Engine hashengine.Stats
}

// Measurement is the attestation measurement produced at the end of the
// attested execution: the cumulative hash A and the loop metadata L.
type Measurement struct {
	Hash  [hashengine.DigestSize]byte // A
	Loops []monitor.LoopRecord        // L
	Stats Stats

	// Segments holds the streamed checkpoint chain when the run was
	// measured through the segment emitter (internal/stream); nil for
	// plain end-of-run measurements. Golden streaming runs retain them
	// so incremental verification can compare per-segment states.
	Segments []Segment
}

// Device is the LO-FAT hardware instance. It implements trace.Sink so it
// can be attached directly to the simulated core's trace port.
type Device struct {
	cfg     Config
	filter  *filter.Filter
	monitor *monitor.Monitor
	engine  *hashengine.Engine

	ops       []filter.Op // scratch, reused per event
	lastCycle uint64      // CPU cycle of the previous event
	devTime   uint64      // device-internal completion time
	maxLag    uint64
	finalized bool
	drain     uint64
	result    Measurement
}

// NewDevice builds a LO-FAT device with the given configuration.
func NewDevice(cfg Config) *Device {
	cfg.fill()
	d := &Device{cfg: cfg}
	d.engine = hashengine.New(cfg.Engine)
	d.filter = filter.New(cfg.Filter)
	d.monitor = monitor.New(cfg.Monitor, d.absorb)
	return d
}

// SetFIFOGauge publishes the hash engine's input-FIFO occupancy to g
// (see hashengine.Engine.SetFIFOGauge). Deliberately a setter, not a
// Config field: Config is the device-pool key and must stay free of
// observability state.
func (d *Device) SetFIFOGauge(g *obs.Gauge) { d.engine.SetFIFOGauge(g) }

// devicePools maps a (filled) Config to a *sync.Pool of *Device.
var devicePools sync.Map

// AcquireDevice returns a reset device for the configuration, reusing a
// pooled instance (filter stack, monitor frame pool, engine buffers)
// when available. Release with ReleaseDevice once the measurement has
// been finalized and copied out.
func AcquireDevice(cfg Config) *Device {
	cfg.fill()
	v, ok := devicePools.Load(cfg)
	if !ok {
		v, _ = devicePools.LoadOrStore(cfg, &sync.Pool{})
	}
	pool := v.(*sync.Pool)
	if d, _ := pool.Get().(*Device); d != nil {
		d.Reset()
		return d
	}
	return NewDevice(cfg)
}

// ReleaseDevice returns a device obtained from AcquireDevice to its
// pool. The device (and any Measurement fields that alias it) must not
// be used afterwards; Finalize's result is safe — it owns copies.
func ReleaseDevice(d *Device) {
	if d == nil {
		return
	}
	if v, ok := devicePools.Load(d.cfg); ok {
		v.(*sync.Pool).Put(d)
	}
}

// absorb forwards a measured pair into the hash engine. The loop
// monitor reads pairs out of the branches memory, so when the engine's
// input FIFO is full it simply waits engine cycles (backpressure inside
// the device — never to the processor) rather than dropping.
//
//lofat:zeroalloc
func (d *Device) absorb(p hashengine.Pair) {
	for d.engine.Full() {
		d.engine.Tick()
		d.devTime++
	}
	d.engine.Enqueue(p)
}

// RetireBatch implements trace.BatchSink: a batch of retired
// instructions in program order from the core's fast trace port. Each
// event carries its own cycle, so batch delivery is state-identical to
// per-event delivery.
//
//lofat:zeroalloc
func (d *Device) RetireBatch(events []trace.Event) {
	for i := range events {
		d.Retire(events[i])
	}
}

// Sync implements trace.BatchSink: the core clock reached cycle without
// further events for this device (trailing non-control-flow retirements
// withheld by the control-flow-only mask). The engine clock catches up
// exactly as it would have per event.
//
//lofat:zeroalloc
func (d *Device) Sync(cycle uint64) {
	if d.finalized {
		return
	}
	if cycle > d.lastCycle {
		d.engine.Advance(cycle - d.lastCycle)
		d.lastCycle = cycle
	}
}

// CFOnlyCompatible reports whether feeding the device only control-flow
// events (plus clock Syncs) produces measurements bit-identical to full
// delivery. True unless a Region is configured: region gating watches
// every retired PC to flush active loops the moment execution leaves the
// attested range, so it needs the unmasked stream.
func (d *Device) CFOnlyCompatible() bool { return d.cfg.Region == (Region{}) }

// Retire implements trace.Sink: one retired instruction from the core.
//
//lofat:zeroalloc
func (d *Device) Retire(e trace.Event) {
	if d.finalized {
		return
	}
	// Advance the engine clock in step with the processor.
	if e.Cycle > d.lastCycle {
		d.engine.Advance(e.Cycle - d.lastCycle)
		d.lastCycle = e.Cycle
	}

	// Region gating: leaving the attested range flushes any active
	// loops (their bodies cannot continue outside); events sourced
	// outside the range are not measured.
	if !d.cfg.Region.Contains(e.PC) {
		if d.filter.Depth() > 0 {
			ops := d.filter.Flush(d.ops[:0])
			for _, op := range ops {
				d.devTime += d.cfg.LoopExitCycles
				d.monitor.Apply(op)
			}
		}
		return
	}

	d.ops = d.filter.Step(e, d.ops[:0])
	if len(d.ops) == 0 {
		return
	}

	// Internal latency accounting: the device pipeline catches up to
	// the processor clock, then spends its tracking latency. The
	// processor is never held.
	if d.devTime < e.Cycle {
		d.devTime = e.Cycle
	}
	d.devTime += d.cfg.BranchTrackCycles
	for _, op := range d.ops {
		if op.Kind == filter.OpLoopExit {
			d.devTime += d.cfg.LoopExitCycles
		}
		d.monitor.Apply(op)
	}
	if lag := d.devTime - e.Cycle; lag > d.maxLag {
		d.maxLag = lag
	}
}

// Finalize ends the attested execution: active loops are flushed, the
// engine drains, and the measurement (A, L) is produced. The device must
// be Reset before reuse.
func (d *Device) Finalize() Measurement {
	if d.finalized {
		return d.result
	}
	ops := d.filter.Flush(d.ops[:0])
	for _, op := range ops {
		d.devTime += d.cfg.LoopExitCycles
		d.monitor.Apply(op)
	}
	d.drain = d.engine.Drain()
	d.finalized = true
	d.result = Measurement{
		Hash:  d.engine.Finalize(),
		Loops: append([]monitor.LoopRecord(nil), d.monitor.Records()...),
	}
	d.result.Stats = d.stats()
	return d.result
}

func (d *Device) stats() Stats {
	return Stats{
		ProcessorStallCycles:  0, // structural: the device only listens
		ControlFlowEvents:     d.filter.Events,
		LoopEvents:            d.filter.LoopEvents,
		HashedPairs:           d.monitor.HashedPairs,
		DedupedPairs:          d.monitor.DedupedPairs,
		NewPaths:              d.monitor.NewPaths,
		RepeatedPaths:         d.monitor.RepeatedPaths,
		LoopsDetected:         d.filter.Pushes,
		LoopExits:             d.filter.Exits,
		InternalLatencyCycles: d.devTime,
		MaxLagCycles:          d.maxLag,
		DrainCycles:           d.drain,
		Engine:                d.engine.Stats(),
	}
}

// Reset prepares the device for a fresh attestation run.
//
//lofat:zeroalloc
func (d *Device) Reset() {
	d.filter.Reset()
	d.monitor.Reset()
	d.engine.Reset()
	d.lastCycle = 0
	d.devTime = 0
	d.maxLag = 0
	d.drain = 0
	d.finalized = false
}
