package core

import (
	"testing"

	"lofat/internal/isa"
	"lofat/internal/trace"
)

// TestDeviceHotPathZeroAlloc is the runtime proof behind the
// //lofat:zeroalloc annotations on the device's per-event path:
// Retire, RetireBatch, and Sync digest loop iterations without
// allocating once pools and scratch buffers are warm. Loop exit is
// deliberately outside the measured window — record emission copies
// the frame once per exit and carries an audited //lofat:ignore.
func TestDeviceHotPathZeroAlloc(t *testing.T) {
	d := NewDevice(Config{})
	mkEv := func(cycle uint64, pc, next uint32, kind isa.ControlFlowKind) trace.Event {
		return trace.Event{Cycle: cycle, PC: pc, NextPC: next, Kind: kind, Taken: true}
	}

	// Warmup: a full lifecycle (push, iterate, exit, reset) sizes the
	// loop-state pool, the path CAM, and the record buffer.
	d.Retire(mkEv(1, 0x120, 0x100, isa.KindCondBr))
	d.Retire(mkEv(2, 0x11c, 0x100, isa.KindCondBr))
	d.Retire(mkEv(3, 0x118, 0x200, isa.KindJump))
	d.Reset()
	d.Retire(mkEv(1, 0x120, 0x100, isa.KindCondBr)) // re-enter the loop

	iters := []trace.Event{
		mkEv(2, 0x110, 0x118, isa.KindCondBr), // in-body branch
		mkEv(3, 0x11c, 0x100, isa.KindCondBr), // iteration boundary
	}
	cycle := uint64(16)
	run := func() {
		for _, e := range iters {
			d.Retire(e)
		}
		d.RetireBatch(iters)
		cycle += 16
		d.Sync(cycle)
	}
	run()
	if n := testing.AllocsPerRun(100, run); n != 0 {
		t.Fatalf("device hot path allocates %v per run, want 0", n)
	}
	if d.Finalize().Stats.LoopEvents == 0 {
		t.Fatal("no loop events were attributed; the measured path was cold")
	}
}
