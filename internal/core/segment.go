package core

import "lofat/internal/hashengine"

// Segment is one checkpoint of a streamed (segmented) attestation: the
// chained sub-measurement over a window of retired control-flow events.
// The chain makes segment k commit to segments 0..k-1 — Chain is
// SHA3-512 over the previous segment's Chain followed by this window's
// (Src, Dest) edge stream (hashengine.ChainPairs) — so a prover cannot
// retroactively rewrite an already-reported prefix of the execution.
//
// Segments are produced by the stream emitter (internal/stream), which
// taps the same trace port as the LO-FAT device it wraps; golden runs
// retain them on Measurement.Segments so the verifier can check a
// stream incrementally and, on divergence, localize the first bad edge.
type Segment struct {
	// Index is the zero-based position of the segment in the stream.
	Index uint32
	// Events is the number of control-flow edges in this window (the
	// configured window size N for every segment but possibly the last,
	// which holds the tail of the run).
	Events uint32
	// Chain is the running chained digest after absorbing this window.
	Chain [hashengine.DigestSize]byte
	// Edges is the raw (Src, Dest) window, retained for forensic
	// divergence localization. It is authenticated through Chain: the
	// verifier recomputes the chain link from Edges before trusting it.
	Edges []hashengine.Pair
}
