package workloads

// PumpFSM is the full-firmware variant of the syringe pump: the real
// Open Syringe Pump is driven by a button menu, modeled here as an
// event-driven finite state machine with an indirect state-handler
// dispatch (jump table), parameter entry states, and the motor-step
// dispense loop with its bound in writable memory. It exercises, in one
// program, every control-flow shape LO-FAT handles: an outer event loop,
// indirect calls in a loop (CAM), data-dependent handler paths, and a
// nested counted loop with an attackable trip count.
//
// Event words: 0xFF powers off; in IDLE, 1 = enter set-rate, 2 = enter
// set-volume, 3 = dispense (rate x volume steps); in SET_RATE/SET_VOLUME
// the next event word is the parameter value.
// Exit code: total motor steps dispensed.
func PumpFSM() Workload {
	return Workload{
		Name:        "pump-fsm",
		Description: "syringe pump menu FSM: indirect state dispatch + dispense loops",
		// set rate 5, set volume 4, dispense (20), set rate 2,
		// dispense (8), power off: 28 steps.
		Input:    []uint32{1, 5, 2, 4, 3, 1, 2, 3, 0xFF},
		WantExit: 28,
		Source: `
	.data
state_table:
	.word st_idle, st_set_rate, st_set_volume
rate:
	.word 1
volume:
	.word 0
steps_req:
	.word 0                 # remaining steps: attackable loop bound
dispensed:
	.word 0
	.text
main:
	li   s0, 0              # state: 0 idle, 1 set-rate, 2 set-volume
fsm_loop:
	li   a7, 63
	ecall                   # next event word
	li   t0, 0xFF
	beq  a0, t0, shutdown
	# dispatch to the current state's handler through the jump table
	slli t1, s0, 2
	la   t2, state_table
	add  t2, t2, t1
	lw   t3, 0(t2)
	jalr ra, 0(t3)          # a0 = event, returns a0 = next state
	mv   s0, a0
	j    fsm_loop

st_idle:                    # IDLE: route menu selections
	li   t0, 1
	beq  a0, t0, to_set_rate
	li   t0, 2
	beq  a0, t0, to_set_volume
	li   t0, 3
	beq  a0, t0, do_dispense
	li   a0, 0              # unknown event: stay idle
	ret
to_set_rate:
	li   a0, 1
	ret
to_set_volume:
	li   a0, 2
	ret

st_set_rate:                # SET_RATE: event word is the new rate
	la   t0, rate
	sw   a0, 0(t0)
	li   a0, 0
	ret

st_set_volume:              # SET_VOLUME: event word is the new volume
	la   t0, volume
	sw   a0, 0(t0)
	li   a0, 0
	ret

do_dispense:                # IDLE event 3: drive rate*volume motor steps
	la   t0, rate
	lw   t1, 0(t0)
	la   t0, volume
	lw   t2, 0(t0)
	mul  t1, t1, t2
	la   t0, steps_req
	sw   t1, 0(t0)
step_loop:
	la   t0, steps_req
	lw   t1, 0(t0)          # bound re-read from rw memory each pulse
	beqz t1, dispense_done
	addi t1, t1, -1
	sw   t1, 0(t0)
	la   t2, dispensed      # pulse the motor
	lw   t3, 0(t2)
	addi t3, t3, 1
	sw   t3, 0(t2)
	j    step_loop
dispense_done:
	li   a0, 0              # back to idle
	ret

shutdown:
	la   t0, dispensed
	lw   a0, 0(t0)
	li   a7, 93
	ecall
`,
	}
}
