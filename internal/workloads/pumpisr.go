package workloads

import (
	"fmt"

	"lofat/internal/asm"
	"lofat/internal/cpu"
)

// PumpISR is the interrupt-driven variant of the syringe pump — the
// shape the real Open Syringe Pump firmware actually has: the main
// context is an idle polling loop and ALL motor actuation happens in a
// timer interrupt handler. Each timer tick drives two motor steps; the
// main loop watches the tick counter and reports the total steps
// dispensed once the programmed infusion completes. The workload's
// fixed IRQ schedule (phase 64, period 96, exactly 6 ticks) makes the
// measurement deterministic: 6 ticks × 2 steps = exit code 12.
func PumpISR() Workload {
	return Workload{
		Name:        "pump-isr",
		Description: "interrupt-driven syringe pump: timer ISR steps the motor, main loop idles",
		WantExit:    12,
		ISRLabel:    "isr_timer",
		IRQPhase:    64,
		IRQPeriod:   96,
		IRQCount:    6,
		Source: `
	.data
ticks:
	.word 0                 # timer interrupts serviced
dispensed:
	.word 0                 # motor steps driven, all from ISR context
	.text
main:
	li   s0, 6              # infusion program: run for 6 timer ticks
	li   s1, 0
wait:
	la   t0, ticks
	lw   t1, 0(t0)
	bge  t1, s0, done
	# idle work between ticks: keeps the main context retiring
	# instructions so dispatch edges land on varied interrupted PCs
	addi s1, s1, 1
	andi s1, s1, 255
	j    wait
done:
	la   t0, dispensed
	lw   a0, 0(t0)
	li   a7, 93
	ecall
isr_timer:
	la   t4, ticks
	lw   t5, 0(t4)
	addi t5, t5, 1
	sw   t5, 0(t4)
	la   t4, dispensed
	lw   t5, 0(t4)
	addi t5, t5, 2          # two motor half-steps per tick
	sw   t5, 0(t4)
	mret
`,
	}
}

// Schedule resolves the workload's interrupt schedule against its
// assembled image. Interrupt-free workloads (no ISRLabel) resolve to
// the zero schedule — a disabled interrupt line.
func (w Workload) Schedule(prog *asm.Program) (cpu.IRQSchedule, error) {
	if w.ISRLabel == "" {
		return cpu.IRQSchedule{}, nil
	}
	vector, ok := prog.Entry(w.ISRLabel)
	if !ok {
		return cpu.IRQSchedule{}, fmt.Errorf("workloads: %s: no %q label", w.Name, w.ISRLabel)
	}
	return cpu.IRQSchedule{
		Vector: vector,
		Phase:  w.IRQPhase,
		Period: w.IRQPeriod,
		Count:  w.IRQCount,
	}, nil
}
