package workloads_test

import (
	"crypto/rand"
	"testing"

	"lofat/internal/attest"
	"lofat/internal/core"
	"lofat/internal/sig"
	"lofat/internal/stream"
	"lofat/internal/workloads"
)

// Every hand-written attack scenario of Figure 1 must round-trip
// through the FULL attestation protocol — challenge, adversarial
// execution, signed report, verification — and land on its expected
// Classification on both the direct and the streamed delivery path.
// This is the hand-written anchor of the conformance suite: the
// generated corpus (internal/conform) scales the same contract to
// thousands of scenarios, but these four are the paper's own examples
// with real adversarial executions.
func TestAttacksRoundTripBothPaths(t *testing.T) {
	for _, atk := range workloads.Attacks() {
		atk := atk
		t.Run(atk.Name, func(t *testing.T) {
			prog, err := atk.Workload.Assemble()
			if err != nil {
				t.Fatal(err)
			}
			keys, err := sig.GenerateKeyStore(rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			devCfg := core.Config{}

			// Direct path: end-of-run report, in-process verifier.
			p := attest.NewProver(prog, devCfg, keys)
			p.Adversary = atk.Build(prog)
			v, err := attest.NewVerifier(prog, devCfg, keys.Public(), rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			ch, err := v.NewChallenge(atk.Workload.Input)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := p.Attest(ch)
			if err != nil {
				t.Fatalf("direct attest: %v", err)
			}
			direct := v.Verify(ch, rep)
			if direct.Class != atk.Expect {
				t.Errorf("direct path: class %v, want %v (findings: %v)",
					direct.Class, atk.Expect, direct.Findings)
			}
			if direct.Accepted != (atk.Expect == attest.ClassAccepted) {
				t.Errorf("direct path: accepted=%v for expected class %v", direct.Accepted, atk.Expect)
			}

			// Streamed path: fresh prover/verifier pair (independent
			// adversary state), incremental session.
			p2 := attest.NewProver(prog, devCfg, keys)
			p2.Adversary = atk.Build(prog)
			v2, err := attest.NewVerifier(prog, devCfg, keys.Public(), rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			sv := stream.NewVerifier(v2, stream.Config{SegmentEvents: 16})
			streamed, err := stream.AttestOnce(stream.NewProver(p2), sv, atk.Workload.Input, nil)
			if err != nil {
				t.Fatalf("streamed attest: %v", err)
			}
			if streamed.Class != atk.Expect {
				t.Errorf("streamed path: class %v, want %v (findings: %v)",
					streamed.Class, atk.Expect, streamed.Findings)
			}

			// The two delivery paths must agree on every scenario —
			// the workloads-level instance of the conformance harness's
			// cross-path invariant.
			if direct.Class != streamed.Class || direct.Accepted != streamed.Accepted {
				t.Errorf("paths disagree: direct %v (accepted=%v) vs streamed %v (accepted=%v)",
					direct.Class, direct.Accepted, streamed.Class, streamed.Accepted)
			}

			// Rejections must say why: a finding naming the diagnosis.
			if atk.Expect != attest.ClassAccepted && len(direct.Findings) == 0 {
				t.Error("direct rejection carries no findings")
			}
		})
	}
}
