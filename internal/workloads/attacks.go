package workloads

import (
	"fmt"

	"lofat/internal/asm"
	"lofat/internal/attest"
	"lofat/internal/cpu"
)

// Attack is a run-time attack scenario from Figure 1. Build constructs
// the adversary for a concrete program image (it needs the assembled
// addresses of the data it corrupts). Adversaries act exclusively
// through Machine.Mem.Poke — writable data memory only, exactly the
// paper's threat model.
type Attack struct {
	Name        string
	Description string
	// Class is the Figure 1 attack class (1, 2 or 3).
	Class int
	// Workload is the victim program (with the attack-scenario input).
	Workload Workload
	// Expect is the verdict the verifier should reach.
	Expect attest.Classification
	// Build returns the adversary hook for an assembled image.
	Build func(prog *asm.Program) attest.Adversary
}

// Attacks returns the three attack scenarios of Figure 1 (one per
// class) plus the documented non-detection case: a pure data-oriented
// attack, which control-flow attestation accepts by design.
func Attacks() []Attack {
	return []Attack{AuthBypass(), LoopCounterCorruption(), CodePointerHijack(), DataOnlyCorruption()}
}

// AttackByName looks an attack scenario up.
func AttackByName(name string) (Attack, bool) {
	for _, a := range Attacks() {
		if a.Name == name {
			return a, true
		}
	}
	return Attack{}, false
}

// AuthBypass is attack class 1 (non-control data): the adversary
// overwrites the stored authentication secret so an invalid token is
// accepted and the privileged dispense path executes. Control-flow
// integrity is never violated — only control-flow ATTESTATION sees the
// unexpected-but-valid path.
func AuthBypass() Attack {
	w := SyringePump()
	w.Input = []uint32{0xBAD, 1, 4} // invalid token: expected path = reject
	w.WantExit = 0
	return Attack{
		Name:        "auth-bypass",
		Description: "corrupt auth_secret so a bad token takes the privileged path",
		Class:       1,
		Workload:    w,
		Expect:      attest.ClassNonControlData,
		Build: func(prog *asm.Program) attest.Adversary {
			secret, ok := prog.Labels["auth_secret"]
			if !ok {
				return failingAdversary("auth_secret label missing")
			}
			fired := false
			return func(m *cpu.Machine) error {
				if fired {
					return nil
				}
				fired = true
				// Make the stored secret match the attacker's token.
				return m.Mem.Poke(secret, 0xBAD)
			}
		},
	}
}

// LoopCounterCorruption is attack class 2: the adversary bumps the
// remaining-steps counter mid-bolus so the pump dispenses more liquid
// than requested — the paper's motivating syringe-pump example. The
// executed paths are all legitimate; only iteration COUNTS change, so
// the cumulative hash A is unchanged and detection rests entirely on
// the loop metadata L.
func LoopCounterCorruption() Attack {
	w := SyringePump() // benign input: 2 boluses of 5 and 3 steps
	return Attack{
		Name:        "loop-counter",
		Description: "bump steps_req mid-run: extra motor steps, same paths",
		Class:       2,
		Workload:    w,
		Expect:      attest.ClassLoopCounter,
		Build: func(prog *asm.Program) attest.Adversary {
			steps, ok := prog.Labels["steps_req"]
			if !ok {
				return failingAdversary("steps_req label missing")
			}
			fired := false
			return func(m *cpu.Machine) error {
				if fired {
					return nil
				}
				v, err := m.Mem.Peek(steps)
				if err != nil {
					return err
				}
				if v == 2 { // mid-way through the first bolus
					fired = true
					return m.Mem.Poke(steps, 7) // +5 extra steps
				}
				return nil
			}
		},
	}
}

// codePointerVictim is the victim for attack class 3: a handler loop
// dispatching through a function pointer held in writable data, plus an
// auth-gated maintenance routine whose privileged tail is a classic
// gadget when entered directly.
func codePointerVictim() Workload {
	return Workload{
		Name:        "pointer-victim",
		Description: "handler loop via function pointer; auth-gated privileged tail as gadget",
		WantExit:    3,
		Source: `
	.data
handler_ptr:
	.word safe_handler
	.text
main:
	li   s0, 3
	li   s1, 0
loop:
	la   t0, handler_ptr
	lw   t1, 0(t0)
	jalr ra, 0(t1)          # indirect dispatch, attacker-reachable ptr
	addi s0, s0, -1
	bnez s0, loop
	mv   a0, s1
	li   a7, 93
	ecall
safe_handler:
	addi s1, s1, 1
	ret
maintenance:                # legitimate entry: auth check first
	beqz a0, maint_deny
unlock:                     # privileged tail — the gadget
	addi s1, s1, 100
	ret
maint_deny:
	ret
`,
	}
}

// CodePointerHijack is attack class 3 (code pointer overwrite): the
// adversary redirects the handler pointer into the middle of the
// maintenance routine, skipping its authentication check — a
// code-reuse-style control-flow violation. The hijacked target is not a
// legitimate function entry, so the reported loop path fails CFG
// validation.
func CodePointerHijack() Attack {
	return Attack{
		Name:        "code-pointer",
		Description: "redirect handler_ptr to the unlock gadget (mid-function entry)",
		Class:       3,
		Workload:    codePointerVictim(),
		Expect:      attest.ClassControlFlow,
		Build: func(prog *asm.Program) attest.Adversary {
			ptr, okP := prog.Labels["handler_ptr"]
			gadget, okG := prog.Labels["unlock"]
			if !okP || !okG {
				return failingAdversary("handler_ptr/unlock labels missing")
			}
			fired := false
			return func(m *cpu.Machine) error {
				if fired {
					return nil
				}
				fired = true
				return m.Mem.Poke(ptr, gadget)
			}
		},
	}
}

// DataOnlyCorruption is the paper's stated limitation (§3): "our scheme
// can detect attacks that affect the program's control-flow, but not
// pure data-driven attacks ... such as data-oriented programming
// attacks, which remain an open research problem". The adversary bumps
// the pump's `dispensed` output accumulator directly — a value no
// branch ever tests — so the control flow, and therefore the
// attestation, is bit-identical to the benign run while the device's
// output is wrong. The verifier ACCEPTS; the scenario documents the
// boundary of the security argument.
func DataOnlyCorruption() Attack {
	w := SyringePump()
	return Attack{
		Name:        "dop-data-only",
		Description: "bump the dispensed-output accumulator: no branch depends on it",
		Class:       0, // outside the Figure 1 classes: pure data
		Workload:    w,
		Expect:      attest.ClassAccepted, // NOT detected, by design
		Build: func(prog *asm.Program) attest.Adversary {
			dispensed, ok := prog.Labels["dispensed"]
			if !ok {
				return failingAdversary("dispensed label missing")
			}
			fired := false
			return func(m *cpu.Machine) error {
				if fired {
					return nil
				}
				v, err := m.Mem.Peek(dispensed)
				if err != nil {
					return err
				}
				if v == 3 { // mid-run, after some honest dispensing
					fired = true
					return m.Mem.Poke(dispensed, v+100)
				}
				return nil
			}
		},
	}
}

func failingAdversary(msg string) attest.Adversary {
	return func(*cpu.Machine) error { return fmt.Errorf("workloads: %s", msg) }
}
