package workloads

// Additional embedded kernels extending the evaluation set: recursion
// combined with loops (quicksort), a classic sieve, and logarithmic
// search. Registered in All2; kept separate from All so the paper-scoped
// experiment tables stay stable while the extended suite exercises more
// control-flow shapes.

// QuickSort sorts 12 words with recursive quicksort: partition loops
// nested under data-dependent recursion depth — loops *inside* call
// trees, the case the filter's call-depth suppression must handle.
func QuickSort() Workload {
	return Workload{
		Name:        "quicksort",
		Description: "recursive quicksort of 12 words; loops under recursion",
		WantExit:    650, // sum of k^2 for k=1..12 (sorted values at 1-based positions)
		Source: `
	.data
arr:
	.word 9, 3, 7, 1, 8, 2, 12, 5, 11, 4, 10, 6
	.equ N, 12
	.text
main:
	la   a0, arr            # lo pointer
	la   a1, arr
	addi a1, a1, 44         # hi pointer (last element)
	call qsort
	# checksum: sum(arr[i] * (i+1))
	la   s2, arr
	li   s3, 0
	li   s5, 0
chk_loop:
	slli t0, s3, 2
	add  t0, s2, t0
	lw   t1, 0(t0)
	addi t2, s3, 1
	mul  t1, t1, t2
	add  s5, s5, t1
	addi s3, s3, 1
	li   t3, N
	blt  s3, t3, chk_loop
	mv   a0, s5
	li   a7, 93
	ecall

qsort:                      # a0 = lo ptr, a1 = hi ptr
	bgeu a0, a1, qs_done    # <= 1 element
	addi sp, sp, -16
	sw   ra, 12(sp)
	sw   a0, 8(sp)
	sw   a1, 4(sp)
	# Lomuto partition, pivot = *hi.
	lw   t0, 0(a1)          # pivot
	mv   t1, a0             # i = lo (store slot)
	mv   t2, a0             # j = lo (scan)
part_loop:
	bgeu t2, a1, part_done
	lw   t3, 0(t2)
	bge  t3, t0, no_store
	lw   t4, 0(t1)          # swap *i, *j
	sw   t3, 0(t1)
	sw   t4, 0(t2)
	addi t1, t1, 4
no_store:
	addi t2, t2, 4
	j    part_loop
part_done:
	lw   t3, 0(t1)          # swap *i, *hi (pivot into place)
	sw   t0, 0(t1)
	sw   t3, 0(a1)
	sw   t1, 0(sp)          # pivot slot
	# left recursion: [lo, pivot-4]
	lw   a0, 8(sp)
	addi a1, t1, -4
	call qsort
	# right recursion: [pivot+4, hi]
	lw   t1, 0(sp)
	addi a0, t1, 4
	lw   a1, 4(sp)
	call qsort
	lw   ra, 12(sp)
	addi sp, sp, 16
qs_done:
	ret
`,
	}
}

// Sieve computes the number of primes below 64 with the Sieve of
// Eratosthenes: nested loops with strides, byte stores.
func Sieve() Workload {
	return Workload{
		Name:        "sieve",
		Description: "Sieve of Eratosthenes below 64; strided inner loops",
		WantExit:    18, // primes below 64
		Source: `
	.data
flags:
	.space 64
	.equ N, 64
	.text
main:
	# mark composites
	li   s0, 2              # p
outer:
	li   t0, N
	mul  t1, s0, s0         # p*p
	bge  t1, t0, count      # p*p >= N: done marking
	la   t2, flags
	add  t3, t2, t1         # &flags[p*p]
	add  t4, t2, t0         # &flags[N]
mark:
	bgeu t3, t4, next_p
	li   t5, 1
	sb   t5, 0(t3)
	add  t3, t3, s0
	j    mark
next_p:
	addi s0, s0, 1
	j    outer
count:
	li   s1, 0              # count
	li   s2, 2              # i
	la   t2, flags
cnt_loop:
	li   t0, N
	bge  s2, t0, done
	add  t3, t2, s2
	lbu  t4, 0(t3)
	bnez t4, cnt_next
	addi s1, s1, 1
cnt_next:
	addi s2, s2, 1
	j    cnt_loop
done:
	mv   a0, s1
	li   a7, 93
	ecall
`,
	}
}

// BinarySearch looks up verifier-supplied keys in a sorted table: a
// logarithmic loop whose path depends entirely on the input — maximal
// path diversity per iteration count.
func BinarySearch() Workload {
	return Workload{
		Name:        "binary-search",
		Description: "binary search over 16 sorted words, input-driven probes",
		Input:       []uint32{23, 2, 90, 77, 0xFFFFFFFF},
		WantExit:    158, // ((((0+5)*2+0)*2+14)*2+11)*2 over keys 23,2,90,77
		Source: `
	.data
tbl:
	.word 2, 5, 8, 13, 21, 23, 34, 42, 55, 60, 68, 77, 81, 88, 90, 97
	.equ N, 16
	.text
main:
	li   s5, 0              # result accumulator
probe_loop:
	li   a7, 63
	ecall                   # next key (0xFFFFFFFF = stop)
	li   t0, -1
	beq  a0, t0, done
	mv   s0, a0             # key
	li   s1, 0              # lo
	li   s2, N              # hi (exclusive)
bs_loop:
	bgeu s1, s2, not_found
	add  t0, s1, s2
	srli t0, t0, 1          # mid
	slli t1, t0, 2
	la   t2, tbl
	add  t2, t2, t1
	lw   t3, 0(t2)
	beq  t3, s0, found
	bltu t3, s0, go_right
	mv   s2, t0             # hi = mid
	j    bs_loop
go_right:
	addi s1, t0, 1          # lo = mid+1
	j    bs_loop
found:
	add  s5, s5, t0         # accumulate index
	slli s5, s5, 1
	j    probe_loop
not_found:
	addi s5, s5, 1          # penalty for miss
	j    probe_loop
done:
	mv   a0, s5
	li   a7, 93
	ecall
`,
	}
}

// All2 is the extended workload suite: the paper-scoped set plus the
// additional kernels.
func All2() []Workload {
	return append(All(), QuickSort(), Sieve(), BinarySearch(), PumpFSM(), PumpISR())
}
