package workloads_test

import (
	"reflect"
	"testing"

	"lofat/internal/attest"
	"lofat/internal/core"
	"lofat/internal/cpu"
	"lofat/internal/workloads"
)

// runSlow measures a program through the seed slow path: no instruction
// cache (fetch+decode per step) and per-event trace.Sink delivery.
func runSlow(t *testing.T, w workloads.Workload, devCfg core.Config, adv attest.Adversary) (core.Measurement, uint32) {
	t.Helper()
	prog, err := w.Assemble()
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	mach, err := cpu.Load(prog, cpu.LoadOptions{})
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	mach.CPU.ClearPredecode()
	dev := core.NewDevice(devCfg)
	mach.CPU.Trace = dev
	mach.CPU.Input = w.Input
	if mach.CPU.IRQ, err = w.Schedule(prog); err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	stepAll(t, w.Name, mach, adv)
	return dev.Finalize(), mach.CPU.ExitCode
}

// runFast measures the same program through the overhauled pipeline:
// predecoded instruction cache, batched trace port, control-flow-only
// mask whenever the device accepts it.
func runFast(t *testing.T, w workloads.Workload, devCfg core.Config, adv attest.Adversary) (core.Measurement, uint32) {
	t.Helper()
	prog, err := w.Assemble()
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	mach, err := cpu.Load(prog, cpu.LoadOptions{})
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	dev := core.NewDevice(devCfg)
	mach.CPU.TraceBatch = dev
	mach.CPU.TraceCFOnly = dev.CFOnlyCompatible()
	mach.CPU.Input = w.Input
	if mach.CPU.IRQ, err = w.Schedule(prog); err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	stepAll(t, w.Name, mach, adv)
	return dev.Finalize(), mach.CPU.ExitCode
}

func stepAll(t *testing.T, name string, mach *cpu.Machine, adv attest.Adversary) {
	t.Helper()
	const budget = 50_000_000
	for !mach.CPU.Halted {
		if mach.CPU.Retired >= budget {
			t.Fatalf("%s: instruction budget exhausted", name)
		}
		if adv != nil {
			if err := adv(mach); err != nil {
				t.Fatalf("%s: adversary: %v", name, err)
			}
		}
		if err := mach.CPU.Step(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func compareRuns(t *testing.T, name string, devCfg core.Config, w workloads.Workload, slowAdv, fastAdv attest.Adversary) {
	t.Helper()
	slow, slowExit := runSlow(t, w, devCfg, slowAdv)
	fast, fastExit := runFast(t, w, devCfg, fastAdv)
	if slowExit != fastExit {
		t.Errorf("%s: exit code: slow %d, fast %d", name, slowExit, fastExit)
	}
	if slow.Hash != fast.Hash {
		t.Errorf("%s: digest diverged:\n slow %x\n fast %x", name, slow.Hash[:8], fast.Hash[:8])
	}
	if !reflect.DeepEqual(slow.Loops, fast.Loops) {
		t.Errorf("%s: loop records diverged:\n slow %v\n fast %v", name, slow.Loops, fast.Loops)
	}
	if slow.Stats != fast.Stats {
		t.Errorf("%s: stats diverged:\n slow %+v\n fast %+v", name, slow.Stats, fast.Stats)
	}
}

// TestDifferentialFastPath proves the hot-path overhaul changes nothing
// observable: every workload (and every attack scenario) produces
// bit-identical measurement digests, loop records, and device stats
// through the seed slow path and the predecoded/batched/masked fast
// path.
func TestDifferentialFastPath(t *testing.T) {
	for _, w := range workloads.All2() {
		t.Run(w.Name, func(t *testing.T) {
			compareRuns(t, w.Name, core.Config{}, w, nil, nil)
		})
	}
}

// TestDifferentialFastPathAttacks repeats the differential comparison
// under every Figure 1 adversary: attacked executions must be measured
// identically too, or the verifier's classification would depend on
// which pipeline the device happened to use.
func TestDifferentialFastPathAttacks(t *testing.T) {
	for _, atk := range workloads.Attacks() {
		t.Run(atk.Name, func(t *testing.T) {
			prog, err := atk.Workload.Assemble()
			if err != nil {
				t.Fatal(err)
			}
			// The adversary hooks are one-shot: build one per run.
			compareRuns(t, atk.Name, core.Config{}, atk.Workload, atk.Build(prog), atk.Build(prog))
		})
	}
}

// TestDifferentialFastPathRegion pins the region-gated configuration,
// where the control-flow-only mask must disable itself (the device needs
// every retired PC to flush loops at the region boundary).
func TestDifferentialFastPathRegion(t *testing.T) {
	for _, w := range []workloads.Workload{workloads.SyringePump(), workloads.CRC32()} {
		prog, err := w.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		// An arbitrary sub-range cutting through the program: the
		// measurement definition only requires slow/fast agreement.
		mid := prog.TextBase + uint32(len(prog.Text)/2)&^3
		cfg := core.Config{Region: core.Region{Start: prog.TextBase + 8, End: mid}}
		t.Run(w.Name, func(t *testing.T) {
			compareRuns(t, w.Name, cfg, w, nil, nil)
		})
	}
}
