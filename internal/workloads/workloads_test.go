package workloads

import (
	"hash/crc32"
	"testing"

	"lofat/internal/cpu"
)

// Every workload must assemble, run to completion, and produce its
// expected functional result.
func TestWorkloadsFunctional(t *testing.T) {
	for _, w := range All2() {
		t.Run(w.Name, func(t *testing.T) {
			prog, err := w.Assemble()
			if err != nil {
				t.Fatal(err)
			}
			mach, err := cpu.Load(prog, cpu.LoadOptions{})
			if err != nil {
				t.Fatal(err)
			}
			mach.CPU.Input = w.Input
			if mach.CPU.IRQ, err = w.Schedule(prog); err != nil {
				t.Fatal(err)
			}
			if err := mach.CPU.Run(10_000_000); err != nil {
				t.Fatal(err)
			}
			if mach.CPU.ExitCode != w.WantExit {
				t.Errorf("exit = %d, want %d", mach.CPU.ExitCode, w.WantExit)
			}
		})
	}
}

// The assembly CRC must agree with Go's reference implementation.
func TestCRC32AgainstReference(t *testing.T) {
	w := CRC32()
	prog, err := w.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	mach, err := cpu.Load(prog, cpu.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mach.CPU.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	want := crc32.ChecksumIEEE([]byte("1234567890abcdef"))
	if mach.CPU.ExitCode != want {
		t.Errorf("crc = %#x, want %#x", mach.CPU.ExitCode, want)
	}
}

// The assembly matmul must agree with a Go reference.
func TestMatMulAgainstReference(t *testing.T) {
	var a, b [4][4]int
	v := 1
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			a[i][j] = v
			b[i][j] = 17 - v
			v++
		}
	}
	dot := func(i, j int) int {
		s := 0
		for k := 0; k < 4; k++ {
			s += a[i][k] * b[k][j]
		}
		return s
	}
	want := uint32(dot(0, 0) + dot(3, 3))

	w := MatMul()
	prog, err := w.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	mach, err := cpu.Load(prog, cpu.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mach.CPU.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if mach.CPU.ExitCode != want {
		t.Errorf("matmul = %d, want %d", mach.CPU.ExitCode, want)
	}
}

// Attack adversaries must change the functional outcome (otherwise the
// scenarios prove nothing).
func TestAttacksChangeBehaviour(t *testing.T) {
	for _, atk := range Attacks() {
		t.Run(atk.Name, func(t *testing.T) {
			prog, err := atk.Workload.Assemble()
			if err != nil {
				t.Fatal(err)
			}
			// Benign run.
			mach, err := cpu.Load(prog, cpu.LoadOptions{})
			if err != nil {
				t.Fatal(err)
			}
			mach.CPU.Input = atk.Workload.Input
			if err := mach.CPU.Run(10_000_000); err != nil {
				t.Fatal(err)
			}
			benign := mach.CPU.ExitCode
			if benign != atk.Workload.WantExit {
				t.Fatalf("benign exit = %d, want %d", benign, atk.Workload.WantExit)
			}

			// Attacked run.
			mach2, err := cpu.Load(prog, cpu.LoadOptions{})
			if err != nil {
				t.Fatal(err)
			}
			mach2.CPU.Input = atk.Workload.Input
			adv := atk.Build(prog)
			for !mach2.CPU.Halted {
				if err := adv(mach2); err != nil {
					t.Fatal(err)
				}
				if err := mach2.CPU.Step(); err != nil {
					t.Fatal(err)
				}
				if mach2.CPU.Retired > 10_000_000 {
					t.Fatal("attacked run diverged")
				}
			}
			if mach2.CPU.ExitCode == benign {
				t.Errorf("attack %s did not change the outcome (exit %d)", atk.Name, benign)
			}
			t.Logf("%s: benign exit %d, attacked exit %d", atk.Name, benign, mach2.CPU.ExitCode)
		})
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("syringe-pump"); !ok {
		t.Error("syringe-pump not found")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("bogus workload found")
	}
	if _, ok := AttackByName("loop-counter"); !ok {
		t.Error("loop-counter attack not found")
	}
	if _, ok := AttackByName("nope"); ok {
		t.Error("bogus attack found")
	}
}
