// Package workloads provides the embedded programs the evaluation runs
// under LO-FAT: an Open Syringe Pump firmware analogue (the paper's §6.1
// demo application), a set of embedded kernels with the control-flow
// shapes that stress the design (data-dependent branches, deep loop
// nests, recursion, indirect dispatch), and the run-time attack
// scenarios of Figure 1 (non-control data, loop counter, code pointer).
//
// All programs are written in RV32IM assembly and assembled by
// internal/asm; this substitutes for the paper's GCC-built binaries (see
// DESIGN.md's substitution ledger).
package workloads

import (
	"fmt"

	"lofat/internal/asm"
)

// Workload is a runnable attested program.
type Workload struct {
	// Name is a short identifier ("syringe-pump").
	Name string
	// Description says what the program computes and why it is in the
	// evaluation set.
	Description string
	// Source is the RV32IM assembly.
	Source string
	// Input is the benign verifier input i.
	Input []uint32
	// WantExit is the expected exit code under Input (functional
	// ground truth for the simulator tests).
	WantExit uint32
	// ISRLabel, when set, names the interrupt handler label; the
	// workload then expects the fixed IRQPhase/IRQPeriod/IRQCount
	// schedule (resolved by Schedule) on the device's interrupt line.
	// WantExit is the exit code UNDER that schedule.
	ISRLabel  string
	IRQPhase  uint64
	IRQPeriod uint64
	IRQCount  uint64
}

// Assemble builds the workload's program image.
func (w Workload) Assemble() (*asm.Program, error) {
	p, err := asm.Assemble(w.Source)
	if err != nil {
		return nil, fmt.Errorf("workloads: %s: %w", w.Name, err)
	}
	return p, nil
}

// All returns the full evaluation set, syringe pump first.
func All() []Workload {
	return []Workload{
		SyringePump(),
		BubbleSort(),
		CRC32(),
		MatMul(),
		FibRecursive(),
		Dispatch(),
		StringSearch(),
	}
}

// ByName looks a workload up in the extended suite (All2).
func ByName(name string) (Workload, bool) {
	for _, w := range All2() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// BubbleSort sorts an 8-element array: quadratic nest with
// data-dependent swap branches — many distinct loop paths.
func BubbleSort() Workload {
	return Workload{
		Name:        "bubble-sort",
		Description: "bubble sort of 8 words; data-dependent branch per comparison",
		WantExit:    218, // sum(arr[i]*(i+1)) over sorted {1,2,2,3,5,7,8,9}
		Source: `
	.data
arr:
	.word 5, 2, 9, 1, 7, 3, 8, 2
	.equ N, 8
	.text
main:
	li   s1, N
	addi s1, s1, -1        # passes = N-1
pass_loop:
	la   s2, arr
	li   s3, 0             # j = 0
	li   s4, N
	addi s4, s4, -1        # N-1
cmp_loop:
	slli t0, s3, 2
	add  t0, s2, t0
	lw   t1, 0(t0)
	lw   t2, 4(t0)
	ble  t1, t2, no_swap
	sw   t2, 0(t0)
	sw   t1, 4(t0)
no_swap:
	addi s3, s3, 1
	blt  s3, s4, cmp_loop
	addi s1, s1, -1
	bnez s1, pass_loop
	# exit code: sum(arr[i] * (i+1)) to pin the final order
	la   s2, arr
	li   s3, 0
	li   s5, 0
sum_loop:
	slli t0, s3, 2
	add  t0, s2, t0
	lw   t1, 0(t0)
	addi t2, s3, 1
	mul  t1, t1, t2
	add  s5, s5, t1
	addi s3, s3, 1
	li   t3, N
	blt  s3, t3, sum_loop
	mv   a0, s5
	li   a7, 93
	ecall
`,
	}
}

// CRC32 computes a bitwise CRC-32 (poly 0xEDB88320) over 16 bytes:
// a tight inner 8-iteration loop with a data-dependent XOR branch.
func CRC32() Workload {
	return Workload{
		Name:        "crc32",
		Description: "bitwise CRC-32 over 16 bytes; dense 8-bit inner loops",
		WantExit:    1554196281, // crc32.ChecksumIEEE("1234567890abcdef")
		Source: `
	.data
buf:
	.byte 0x31, 0x32, 0x33, 0x34, 0x35, 0x36, 0x37, 0x38
	.byte 0x39, 0x30, 0x61, 0x62, 0x63, 0x64, 0x65, 0x66
	.equ LEN, 16
	.text
main:
	li   s0, -1            # crc = 0xFFFFFFFF
	la   s1, buf
	li   s2, 0             # i
	li   s3, LEN
	li   s4, 0xEDB88320
byte_loop:
	add  t0, s1, s2
	lbu  t1, 0(t0)
	xor  s0, s0, t1
	li   s5, 8             # bit counter
bit_loop:
	andi t2, s0, 1
	srli s0, s0, 1
	beqz t2, no_xor
	xor  s0, s0, s4
no_xor:
	addi s5, s5, -1
	bnez s5, bit_loop
	addi s2, s2, 1
	blt  s2, s3, byte_loop
	not  a0, s0
	li   a7, 93
	ecall
`,
	}
}

// MatMul multiplies two 4x4 matrices: a three-deep loop nest, exactly
// the paper's supported nesting depth.
func MatMul() Workload {
	return Workload{
		Name:        "matmul",
		Description: "4x4 integer matrix multiply; 3-deep loop nest (paper's max depth)",
		WantExit:    466, // C[0][0] + C[3][3]
		Source: `
	.data
A:
	.word 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16
B:
	.word 16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1
C:
	.space 64
	.equ N, 4
	.text
main:
	li   s0, 0             # i
i_loop:
	li   s1, 0             # j
j_loop:
	li   s2, 0             # k
	li   s3, 0             # acc
k_loop:
	# acc += A[i][k] * B[k][j]
	slli t0, s0, 2
	add  t0, t0, s2        # i*4 + k
	slli t0, t0, 2
	la   t1, A
	add  t1, t1, t0
	lw   t2, 0(t1)
	slli t3, s2, 2
	add  t3, t3, s1        # k*4 + j
	slli t3, t3, 2
	la   t4, B
	add  t4, t4, t3
	lw   t5, 0(t4)
	mul  t2, t2, t5
	add  s3, s3, t2
	addi s2, s2, 1
	li   t6, N
	blt  s2, t6, k_loop
	# C[i][j] = acc
	slli t0, s0, 2
	add  t0, t0, s1
	slli t0, t0, 2
	la   t1, C
	add  t1, t1, t0
	sw   s3, 0(t1)
	addi s1, s1, 1
	li   t6, N
	blt  s1, t6, j_loop
	addi s0, s0, 1
	li   t6, N
	blt  s0, t6, i_loop
	# exit: C[0][0] + C[3][3]
	la   t1, C
	lw   a0, 0(t1)
	lw   t2, 60(t1)
	add  a0, a0, t2
	li   a7, 93
	ecall
`,
	}
}

// FibRecursive computes fib(10) by naive recursion: a call tree with no
// loops — exercises linking-call/return handling outside loops.
func FibRecursive() Workload {
	return Workload{
		Name:        "fib-recursive",
		Description: "naive recursive fib(10); deep call tree, returns everywhere",
		WantExit:    55,
		Source: `
main:
	li   a0, 10
	call fib
	li   a7, 93
	ecall
fib:                        # a0 = n -> a0 = fib(n)
	li   t0, 2
	blt  a0, t0, fib_base
	addi sp, sp, -12
	sw   ra, 8(sp)
	sw   a0, 4(sp)
	addi a0, a0, -1
	call fib
	sw   a0, 0(sp)          # fib(n-1)
	lw   a0, 4(sp)
	addi a0, a0, -2
	call fib
	lw   t1, 0(sp)
	add  a0, a0, t1
	lw   ra, 8(sp)
	addi sp, sp, 12
	ret
fib_base:
	ret                     # fib(0)=0, fib(1)=1: a0 already correct
`,
	}
}

// Dispatch is an input-driven command interpreter: a loop around an
// indirect call through a jump table — the §5.2 scenario (indirect
// branches inside loops, CAM-encoded targets).
func Dispatch() Workload {
	return Workload{
		Name:        "dispatch",
		Description: "command interpreter: loop + jump-table indirect calls (CAM path)",
		Input:       []uint32{2, 1, 0, 2, 1, 99}, // commands; 99 = stop
		WantExit:    21,                          // 7+3+1+7+3
		Source: `
	.data
table:
	.word cmd_inc, cmd_add3, cmd_add7
	.text
main:
	li   s0, 0             # accumulator
cmd_loop:
	li   a7, 63
	ecall                  # next command word
	li   t0, 3
	bgeu a0, t0, done      # >= 3 (or input exhausted -> 0? 0 is cmd) stop on >=3
	slli t1, a0, 2
	la   t2, table
	add  t2, t2, t1
	lw   t3, 0(t2)
	mv   a0, s0
	jalr ra, 0(t3)
	mv   s0, a0
	j    cmd_loop
done:
	mv   a0, s0
	li   a7, 93
	ecall
cmd_inc:
	addi a0, a0, 1
	ret
cmd_add3:
	addi a0, a0, 3
	ret
cmd_add7:
	addi a0, a0, 7
	ret
`,
	}
}

// StringSearch scans a haystack for a needle byte sequence: nested loop
// with early-exit inner comparisons.
func StringSearch() Workload {
	return Workload{
		Name:        "string-search",
		Description: "naive substring search; early-exit inner loop",
		WantExit:    10, // index of "fox"
		Source: `
	.data
hay:
	.byte 't','h','e',' ','q','u','i','c','k',' ','f','o','x',' ','r','u','n','s', 0
ndl:
	.byte 'f','o','x', 0
	.text
main:
	la   s0, hay
	li   s1, 0             # i
	li   s2, 19            # haystack length (incl NUL)
outer:
	li   s3, 0             # j
inner:
	la   t0, ndl
	add  t0, t0, s3
	lbu  t1, 0(t0)
	beqz t1, found         # end of needle: match at i
	add  t2, s0, s1
	add  t2, t2, s3
	lbu  t3, 0(t2)
	bne  t1, t3, advance
	addi s3, s3, 1
	j    inner
advance:
	addi s1, s1, 1
	blt  s1, s2, outer
	li   a0, -1
	li   a7, 93
	ecall
found:
	mv   a0, s1
	li   a7, 93
	ecall
`,
	}
}
