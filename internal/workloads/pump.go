package workloads

// SyringePump is the paper's §6.1 demonstration application: a control
// loop modeled on the Open Syringe Pump firmware
// (https://hackaday.io/project/1838-open-syringe-pump). The device
// authenticates a command source, then dispenses the requested boluses
// as motor-step loops. Two properties make it the canonical CFA example:
// the privileged dispense path is guarded by a data variable (attack
// class 1), and the dispensed volume is controlled by loop trip counts
// held in writable memory (attack class 2 — "a syringe pump dispenses
// more liquid than requested").
//
// Input words: [auth_token, bolus_count, steps_1, ..., steps_n].
// Exit code: total motor steps dispensed (0 when rejected).
func SyringePump() Workload {
	return Workload{
		Name:        "syringe-pump",
		Description: "Open Syringe Pump control loop: auth gate + bolus/step dispense loops",
		Input:       []uint32{0xC0FFEE, 2, 5, 3}, // valid token, 2 boluses: 5+3 steps
		WantExit:    8,
		Source: `
	.data
auth_secret:
	.word 0xC0FFEE
dispensed:
	.word 0                 # total steps driven to the motor
steps_req:
	.word 0                 # remaining steps of the current bolus
	.text
main:
	li   a7, 63
	ecall                   # read auth token
	la   t0, auth_secret
	lw   t1, 0(t0)
	bne  a0, t1, reject
	li   a7, 63
	ecall                   # read bolus count
	mv   s0, a0
	beqz s0, done
bolus_loop:
	li   a7, 63
	ecall                   # steps for this bolus
	la   t0, steps_req
	sw   a0, 0(t0)
step_loop:
	la   t0, steps_req
	lw   t1, 0(t0)          # loop bound lives in rw data: attackable
	beqz t1, bolus_done
	addi t1, t1, -1
	sw   t1, 0(t0)
	la   t2, dispensed      # pulse the motor
	lw   t3, 0(t2)
	addi t3, t3, 1
	sw   t3, 0(t2)
	j    step_loop
bolus_done:
	addi s0, s0, -1
	bnez s0, bolus_loop
done:
	la   t0, dispensed
	lw   a0, 0(t0)
	li   a7, 93
	ecall
reject:
	li   a0, 0
	li   a7, 93
	ecall
`,
	}
}
