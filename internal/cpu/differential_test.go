package cpu

import (
	"math/rand"
	"testing"

	"lofat/internal/asm"
	"lofat/internal/isa"
)

// refState is an independent, deliberately naive interpreter for
// straight-line ALU instructions, written directly from the RISC-V spec
// text rather than sharing any code with the CPU. Differential testing
// against it catches sign-extension, shift-masking and overflow bugs.
type refState struct {
	regs [32]int64 // kept as int64; truncated to 32 bits on every write
}

func (s *refState) get(r isa.Reg) uint32 { return uint32(s.regs[r]) }

func (s *refState) set(r isa.Reg, v uint32) {
	if r != 0 {
		s.regs[r] = int64(v)
	}
}

func (s *refState) exec(in isa.Inst) {
	a := s.get(in.Rs1)
	b := s.get(in.Rs2)
	imm := uint32(in.Imm)
	sa := int32(a)
	sb := int32(b)
	simm := in.Imm
	switch in.Op {
	case isa.OpADDI:
		s.set(in.Rd, a+imm)
	case isa.OpSLTI:
		s.set(in.Rd, b2u(sa < simm))
	case isa.OpSLTIU:
		s.set(in.Rd, b2u(a < imm))
	case isa.OpXORI:
		s.set(in.Rd, a^imm)
	case isa.OpORI:
		s.set(in.Rd, a|imm)
	case isa.OpANDI:
		s.set(in.Rd, a&imm)
	case isa.OpSLLI:
		s.set(in.Rd, a<<uint(in.Imm))
	case isa.OpSRLI:
		s.set(in.Rd, a>>uint(in.Imm))
	case isa.OpSRAI:
		s.set(in.Rd, uint32(sa>>uint(in.Imm)))
	case isa.OpADD:
		s.set(in.Rd, a+b)
	case isa.OpSUB:
		s.set(in.Rd, a-b)
	case isa.OpSLL:
		s.set(in.Rd, a<<(b&31))
	case isa.OpSLT:
		s.set(in.Rd, b2u(sa < sb))
	case isa.OpSLTU:
		s.set(in.Rd, b2u(a < b))
	case isa.OpXOR:
		s.set(in.Rd, a^b)
	case isa.OpSRL:
		s.set(in.Rd, a>>(b&31))
	case isa.OpSRA:
		s.set(in.Rd, uint32(sa>>(b&31)))
	case isa.OpOR:
		s.set(in.Rd, a|b)
	case isa.OpAND:
		s.set(in.Rd, a&b)
	case isa.OpMUL:
		s.set(in.Rd, uint32(int64(sa)*int64(sb)))
	case isa.OpMULH:
		s.set(in.Rd, uint32((int64(sa)*int64(sb))>>32))
	case isa.OpMULHU:
		s.set(in.Rd, uint32((uint64(a)*uint64(b))>>32))
	case isa.OpMULHSU:
		s.set(in.Rd, uint32((int64(sa)*int64(uint64(b)))>>32))
	case isa.OpDIV:
		switch {
		case sb == 0:
			s.set(in.Rd, 0xFFFFFFFF)
		case sa == -1<<31 && sb == -1:
			s.set(in.Rd, uint32(sa))
		default:
			s.set(in.Rd, uint32(sa/sb))
		}
	case isa.OpDIVU:
		if b == 0 {
			s.set(in.Rd, 0xFFFFFFFF)
		} else {
			s.set(in.Rd, a/b)
		}
	case isa.OpREM:
		switch {
		case sb == 0:
			s.set(in.Rd, uint32(sa))
		case sa == -1<<31 && sb == -1:
			s.set(in.Rd, 0)
		default:
			s.set(in.Rd, uint32(sa%sb))
		}
	case isa.OpREMU:
		if b == 0 {
			s.set(in.Rd, a)
		} else {
			s.set(in.Rd, a%b)
		}
	case isa.OpLUI:
		s.set(in.Rd, imm)
	}
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// aluOps are the opcodes the reference covers.
var aluOps = []isa.Opcode{
	isa.OpADDI, isa.OpSLTI, isa.OpSLTIU, isa.OpXORI, isa.OpORI, isa.OpANDI,
	isa.OpSLLI, isa.OpSRLI, isa.OpSRAI,
	isa.OpADD, isa.OpSUB, isa.OpSLL, isa.OpSLT, isa.OpSLTU, isa.OpXOR,
	isa.OpSRL, isa.OpSRA, isa.OpOR, isa.OpAND,
	isa.OpMUL, isa.OpMULH, isa.OpMULHU, isa.OpMULHSU,
	isa.OpDIV, isa.OpDIVU, isa.OpREM, isa.OpREMU,
	isa.OpLUI,
}

func randomALUInst(r *rand.Rand) isa.Inst {
	op := aluOps[r.Intn(len(aluOps))]
	in := isa.Inst{Op: op}
	in.Rd = isa.Reg(r.Intn(32))
	in.Rs1 = isa.Reg(r.Intn(32))
	in.Rs2 = isa.Reg(r.Intn(32))
	switch op {
	case isa.OpSLLI, isa.OpSRLI, isa.OpSRAI:
		in.Rs2 = 0
		in.Imm = int32(r.Intn(32))
	case isa.OpLUI:
		in.Rs1, in.Rs2 = 0, 0
		in.Imm = int32(r.Uint32() & 0xFFFFF000)
	case isa.OpADDI, isa.OpSLTI, isa.OpSLTIU, isa.OpXORI, isa.OpORI, isa.OpANDI:
		in.Rs2 = 0
		in.Imm = int32(r.Intn(1<<12)) - 1<<11
	default:
		in.Imm = 0
	}
	return in
}

// TestDifferentialALU executes random straight-line ALU programs on the
// CPU and the reference interpreter and compares the full register file.
func TestDifferentialALU(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		const n = 40
		insts := make([]isa.Inst, n)
		for i := range insts {
			insts[i] = randomALUInst(r)
		}

		// Assemble into a loadable image by direct encoding plus exit.
		words := make([]uint32, 0, n+2)
		for _, in := range insts {
			words = append(words, isa.MustEncode(in))
		}
		words = append(words,
			isa.MustEncode(isa.Inst{Op: isa.OpADDI, Rd: isa.A7, Imm: 93}),
			isa.MustEncode(isa.Inst{Op: isa.OpECALL}))

		mach := loadWords(t, words)
		// Seed registers identically on both sides.
		var ref refState
		for i := 1; i < 32; i++ {
			v := r.Uint32()
			mach.CPU.Regs[i] = v
			ref.regs[i] = int64(v)
		}
		for _, in := range insts {
			ref.exec(in)
		}
		// a7 is clobbered by the exit sequence; exclude from compare.
		if err := mach.CPU.Run(1000); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < 32; i++ {
			if isa.Reg(i) == isa.A7 {
				continue
			}
			if mach.CPU.Regs[i] != ref.get(isa.Reg(i)) {
				t.Fatalf("trial %d: x%d = %#x, reference %#x\nprogram: %v",
					trial, i, mach.CPU.Regs[i], ref.get(isa.Reg(i)), insts)
			}
		}
	}
}

// loadWords builds a machine directly from instruction words.
func loadWords(t *testing.T, words []uint32) *Machine {
	t.Helper()
	text := make([]byte, 4*len(words))
	for i, w := range words {
		text[4*i] = byte(w)
		text[4*i+1] = byte(w >> 8)
		text[4*i+2] = byte(w >> 16)
		text[4*i+3] = byte(w >> 24)
	}
	prog := &asm.Program{
		TextBase: asm.DefaultLayout.TextBase,
		Text:     text,
		DataBase: asm.DefaultLayout.DataBase,
		Labels:   map[string]uint32{},
	}
	mach, err := Load(prog, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return mach
}
