package cpu

import (
	"strings"
	"testing"

	"lofat/internal/isa"
	"lofat/internal/trace"
)

// run assembles, loads and runs a program to completion, returning the CPU.
func run(t *testing.T, src string) *CPU {
	t.Helper()
	m := MustLoadSource(src)
	if err := m.CPU.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m.CPU
}

const exitSeq = `
	li a7, 93
	ecall
`

func TestArithmetic(t *testing.T) {
	c := run(t, `
	main:
		li   a0, 7
		li   a1, 5
		add  a2, a0, a1    # 12
		sub  a3, a0, a1    # 2
		mul  a4, a0, a1    # 35
		div  a5, a0, a1    # 1
		rem  t0, a0, a1    # 2
		xor  t1, a0, a1    # 2
		or   t2, a0, a1    # 7
		and  t3, a0, a1    # 5
		slli t4, a0, 2     # 28
		srai t5, a3, 1     # 1
	`+exitSeq)
	checks := map[isa.Reg]uint32{
		isa.A2: 12, isa.A3: 2, isa.A4: 35, isa.A5: 1,
		isa.T0: 2, isa.T1: 2, isa.T2: 7, isa.T3: 5,
		isa.T4: 28, isa.T5: 1,
	}
	for r, want := range checks {
		if got := c.Regs[r]; got != want {
			t.Errorf("%s = %d, want %d", r.Name(), got, want)
		}
	}
}

func TestSignedUnsignedCompares(t *testing.T) {
	c := run(t, `
	main:
		li   a0, -1
		li   a1, 1
		slt  a2, a0, a1    # -1 < 1 signed: 1
		sltu a3, a0, a1    # 0xFFFFFFFF < 1 unsigned: 0
		slti a4, a0, 0     # 1
		sltiu a5, a1, 2    # 1
	`+exitSeq)
	if c.Regs[isa.A2] != 1 || c.Regs[isa.A3] != 0 || c.Regs[isa.A4] != 1 || c.Regs[isa.A5] != 1 {
		t.Errorf("compare results = %d %d %d %d",
			c.Regs[isa.A2], c.Regs[isa.A3], c.Regs[isa.A4], c.Regs[isa.A5])
	}
}

func TestDivisionEdgeCases(t *testing.T) {
	c := run(t, `
	main:
		li   a0, 10
		li   a1, 0
		div  a2, a0, a1    # div by zero: -1
		rem  a3, a0, a1    # rem by zero: dividend
		divu a4, a0, a1    # 0xFFFFFFFF
		li   a0, 0x80000000
		li   a1, -1
		div  a5, a0, a1    # overflow: 0x80000000
		rem  t0, a0, a1    # overflow: 0
	`+exitSeq)
	if c.Regs[isa.A2] != 0xFFFFFFFF {
		t.Errorf("div/0 = %#x", c.Regs[isa.A2])
	}
	if c.Regs[isa.A3] != 10 {
		t.Errorf("rem/0 = %d", c.Regs[isa.A3])
	}
	if c.Regs[isa.A4] != 0xFFFFFFFF {
		t.Errorf("divu/0 = %#x", c.Regs[isa.A4])
	}
	if c.Regs[isa.A5] != 0x80000000 {
		t.Errorf("div overflow = %#x", c.Regs[isa.A5])
	}
	if c.Regs[isa.T0] != 0 {
		t.Errorf("rem overflow = %d", c.Regs[isa.T0])
	}
}

func TestMulh(t *testing.T) {
	c := run(t, `
	main:
		li a0, 0x40000000
		li a1, 4
		mulh   a2, a0, a1   # (2^30 * 4) >> 32 = 1
		mulhu  a3, a0, a1   # 1
		li a0, -1
		li a1, -1
		mulh   a4, a0, a1   # (-1 * -1) >> 32 = 0
		mulhu  a5, a0, a1   # (2^32-1)^2 >> 32 = 0xFFFFFFFE
		mulhsu t0, a0, a1   # -1 * (2^32-1) >> 32 = 0xFFFFFFFF
	`+exitSeq)
	if c.Regs[isa.A2] != 1 || c.Regs[isa.A3] != 1 {
		t.Errorf("mulh/mulhu = %d, %d", c.Regs[isa.A2], c.Regs[isa.A3])
	}
	if c.Regs[isa.A4] != 0 {
		t.Errorf("mulh(-1,-1) = %#x", c.Regs[isa.A4])
	}
	if c.Regs[isa.A5] != 0xFFFFFFFE {
		t.Errorf("mulhu(-1,-1) = %#x", c.Regs[isa.A5])
	}
	if c.Regs[isa.T0] != 0xFFFFFFFF {
		t.Errorf("mulhsu(-1,-1) = %#x", c.Regs[isa.T0])
	}
}

func TestLoadsStores(t *testing.T) {
	c := run(t, `
		.data
	buf:
		.space 16
		.text
	main:
		la   a0, buf
		li   a1, 0x80FF1234
		sw   a1, 0(a0)
		lw   a2, 0(a0)
		lb   a3, 3(a0)     # 0x80 sign-extended
		lbu  a4, 3(a0)     # 0x80
		lh   a5, 0(a0)     # 0x1234
		lhu  t0, 2(a0)     # 0x80FF
		sb   a1, 8(a0)
		lbu  t1, 8(a0)     # 0x34
		sh   a1, 12(a0)
		lhu  t2, 12(a0)    # 0x1234
	`+exitSeq)
	if c.Regs[isa.A2] != 0x80FF1234 {
		t.Errorf("lw = %#x", c.Regs[isa.A2])
	}
	if c.Regs[isa.A3] != 0xFFFFFF80 {
		t.Errorf("lb sign = %#x", c.Regs[isa.A3])
	}
	if c.Regs[isa.A4] != 0x80 {
		t.Errorf("lbu = %#x", c.Regs[isa.A4])
	}
	if c.Regs[isa.A5] != 0x1234 {
		t.Errorf("lh = %#x", c.Regs[isa.A5])
	}
	if c.Regs[isa.T0] != 0x80FF {
		t.Errorf("lhu = %#x", c.Regs[isa.T0])
	}
	if c.Regs[isa.T1] != 0x34 || c.Regs[isa.T2] != 0x1234 {
		t.Errorf("sb/sh = %#x, %#x", c.Regs[isa.T1], c.Regs[isa.T2])
	}
}

func TestLoopAndCall(t *testing.T) {
	// sum 1..10 via a helper function.
	c := run(t, `
	main:
		li   a0, 10
		call sum
		mv   s0, a0
	`+exitSeq+`
	sum:                    # a0 = n -> a0 = sum(1..n)
		li   t0, 0
		li   t1, 1
	sum_loop:
		bgt  t1, a0, sum_done
		add  t0, t0, t1
		addi t1, t1, 1
		j    sum_loop
	sum_done:
		mv   a0, t0
		ret
	`)
	if c.Regs[isa.S0] != 55 {
		t.Errorf("sum(10) = %d, want 55", c.Regs[isa.S0])
	}
}

func TestX0IsHardwiredZero(t *testing.T) {
	c := run(t, `
	main:
		li   t0, 99
		add  zero, t0, t0
		mv   a0, zero
	`+exitSeq)
	if c.Regs[isa.Zero] != 0 || c.Regs[isa.A0] != 0 {
		t.Errorf("x0 = %d, a0 = %d", c.Regs[isa.Zero], c.Regs[isa.A0])
	}
}

func TestEcallIO(t *testing.T) {
	m := MustLoadSource(`
	main:
		li   a7, 63        # getword
		ecall
		mv   s0, a0
		ecall              # second word
		mv   s1, a0
		ecall              # exhausted: 0
		mv   s2, a0
		li   a0, 'h'
		li   a7, 64        # putchar
		ecall
		li   a0, 'i'
		ecall
		li   a0, 7
		li   a7, 93
		ecall
	`)
	m.CPU.Input = []uint32{111, 222}
	if err := m.CPU.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if m.CPU.Regs[isa.S0] != 111 || m.CPU.Regs[isa.S1] != 222 || m.CPU.Regs[isa.S2] != 0 {
		t.Errorf("getword = %d, %d, %d", m.CPU.Regs[isa.S0], m.CPU.Regs[isa.S1], m.CPU.Regs[isa.S2])
	}
	if string(m.CPU.Output) != "hi" {
		t.Errorf("output = %q", m.CPU.Output)
	}
	if m.CPU.ExitCode != 7 || !m.CPU.Halted {
		t.Errorf("exit = %d, halted = %v", m.CPU.ExitCode, m.CPU.Halted)
	}
}

func TestTraceEvents(t *testing.T) {
	m := MustLoadSource(`
	main:
		li   a0, 2
	loop:
		addi a0, a0, -1
		bnez a0, loop
		call f
	` + exitSeq + `
	f:
		ret
	`)
	var events []trace.Event
	m.CPU.Trace = trace.SinkFunc(func(e trace.Event) { events = append(events, e) })
	if err := m.CPU.Run(10_000); err != nil {
		t.Fatal(err)
	}

	var kinds []isa.ControlFlowKind
	for _, e := range events {
		if e.Kind != isa.KindNone {
			kinds = append(kinds, e.Kind)
		}
	}
	// bnez taken, bnez not-taken, call, ret.
	want := []isa.ControlFlowKind{isa.KindCondBr, isa.KindCondBr, isa.KindJump, isa.KindReturn}
	if len(kinds) != len(want) {
		t.Fatalf("control-flow events = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("event %d = %v, want %v", i, kinds[i], want[i])
		}
	}

	// The taken bnez must be a backward event (loop back-edge).
	var takenBr *trace.Event
	for i := range events {
		if events[i].Kind == isa.KindCondBr && events[i].Taken {
			takenBr = &events[i]
			break
		}
	}
	if takenBr == nil || !takenBr.IsBackward() {
		t.Errorf("taken bnez not detected as backward: %+v", takenBr)
	}

	// Call is linking, ret is not.
	var call, ret *trace.Event
	for i := range events {
		switch events[i].Kind {
		case isa.KindJump:
			call = &events[i]
		case isa.KindReturn:
			ret = &events[i]
		}
	}
	if call == nil || !call.Linking {
		t.Errorf("call not linking: %+v", call)
	}
	if ret == nil || ret.Linking {
		t.Errorf("ret is linking: %+v", ret)
	}
}

func TestCycleModel(t *testing.T) {
	m := MustLoadSource(`
	main:
		addi a0, a0, 1
		addi a0, a0, 1
	` + exitSeq)
	if err := m.CPU.Run(100); err != nil {
		t.Fatal(err)
	}
	// 2x addi (base) + li a7 (base) + ecall (base+ecall extra)
	want := 4*DefaultCostModel.Base + DefaultCostModel.EcallExtra
	if m.CPU.Cycle != want {
		t.Errorf("cycles = %d, want %d", m.CPU.Cycle, want)
	}
	if m.CPU.Retired != 4 {
		t.Errorf("retired = %d, want 4", m.CPU.Retired)
	}
}

func TestFaults(t *testing.T) {
	cases := []struct {
		name string
		src  string
		frag string
	}{
		{"store to code", "main:\n la t0, main\n sw t0, 0(t0)\n" + exitSeq, "fault"},
		{"unmapped load", "main:\n li t0, 0x40000000\n lw t1, 0(t0)\n" + exitSeq, "fault"},
		{"unknown ecall", "main:\n li a7, 999\n ecall\n" + exitSeq, "unknown ecall"},
		{"ebreak", "main:\n ebreak\n" + exitSeq, "ebreak"},
		{"runaway", "main:\n j main\n", "budget"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := MustLoadSource(c.src)
			err := m.CPU.Run(10_000)
			if err == nil {
				t.Fatal("run succeeded, want error")
			}
			if !strings.Contains(err.Error(), c.frag) {
				t.Fatalf("error %q does not contain %q", err, c.frag)
			}
		})
	}
}

func TestIndirectJumpTable(t *testing.T) {
	// Classic switch dispatch through a jump table: jalr through a
	// loaded function pointer (KindIndirect for LO-FAT).
	c := run(t, `
		.data
	table:
		.word f0, f1
		.text
	main:
		li   s0, 1          # select f1
		la   t0, table
		slli t1, s0, 2
		add  t0, t0, t1
		lw   t2, 0(t0)
		jalr ra, 0(t2)
		mv   s1, a0
	`+exitSeq+`
	f0:
		li a0, 100
		ret
	f1:
		li a0, 200
		ret
	`)
	if c.Regs[isa.S1] != 200 {
		t.Errorf("indirect dispatch = %d, want 200", c.Regs[isa.S1])
	}
}

func TestStepAfterHalt(t *testing.T) {
	m := MustLoadSource("main:" + exitSeq)
	if err := m.CPU.Run(100); err != nil {
		t.Fatal(err)
	}
	if err := m.CPU.Step(); err == nil {
		t.Error("Step after halt succeeded")
	}
}

func TestReset(t *testing.T) {
	m := MustLoadSource(`
	main:
		li a0, 5
	` + exitSeq)
	if err := m.CPU.Run(100); err != nil {
		t.Fatal(err)
	}
	c1, r1 := m.CPU.Cycle, m.CPU.Retired
	m.CPU.Reset(m.Entry, m.StackTop)
	if m.CPU.Halted || m.CPU.Cycle != 0 || m.CPU.Retired != 0 || m.CPU.Regs[isa.A0] != 0 {
		t.Error("Reset did not clear state")
	}
	if err := m.CPU.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.CPU.Cycle != c1 || m.CPU.Retired != r1 {
		t.Errorf("re-run diverged: %d/%d vs %d/%d", m.CPU.Cycle, m.CPU.Retired, c1, r1)
	}
}
