// Package cpu is a behavioural model of the Pulpino-class 32-bit RISC-V
// core the paper prototypes on: a single in-order RV32IM core for
// low-end embedded systems. It executes one instruction per Step with a
// simple cycle-cost model (§6.1 cares about *relative* overheads — the
// C-FLAT baseline's instrumentation cycles vs. LO-FAT's zero stalls —
// not absolute IPC), and publishes every retired instruction on a trace
// port that LO-FAT taps in parallel, exactly as the hardware does.
//
// Two trace ports are offered. The legacy per-event port (Trace) crosses
// the trace.Sink interface once per retirement. The fast port
// (TraceBatch) buffers events and delivers them in batches, optionally
// masked to control-flow events only (TraceCFOnly) — the millions of ALU
// retirements a branch filter would discard anyway never leave the core.
// Both ports carry identical events in identical order; the batched port
// additionally Syncs the observer clock at flush points so cycle-model
// observers stay bit-identical with per-event delivery.
package cpu

import (
	"fmt"

	"lofat/internal/isa"
	"lofat/internal/mem"
	"lofat/internal/trace"
)

// CostModel holds per-instruction-class cycle costs for the in-order
// pipeline. Defaults approximate the 4-stage Pulpino RI5CY core.
type CostModel struct {
	Base       uint64 // every instruction
	TakenExtra uint64 // extra cycles for a taken control transfer (flush)
	LoadExtra  uint64 // extra cycles for loads (use-stall upper bound)
	MulExtra   uint64 // extra cycles for multiply
	DivExtra   uint64 // extra cycles for divide/remainder
	EcallExtra uint64 // privileged-trap entry cost
	IRQExtra   uint64 // interrupt-entry cost (pipeline flush + vector fetch)
}

// DefaultCostModel approximates the Pulpino RI5CY timing.
var DefaultCostModel = CostModel{
	Base:       1,
	TakenExtra: 2,
	LoadExtra:  1,
	MulExtra:   0,
	DivExtra:   34,
	EcallExtra: 4,
	IRQExtra:   4,
}

// IRQSchedule is a deterministic model of the core's single external
// interrupt line: the line asserts at cycle Phase and every Period
// cycles thereafter, and each assertion dispatches to Vector as soon as
// the core is between instructions and not already in a handler (the
// model has one privilege level and no nesting, like the Pulpino event
// unit configured for a single line). A zero Vector disables the line
// entirely; interrupt-free runs are bit-identical to a core without the
// feature. Determinism is the point: the same schedule against the same
// program and input replays the identical interleaving, so golden
// measurements of ISR-driven firmware are reproducible.
type IRQSchedule struct {
	Vector uint32 // handler entry address; 0 disables the interrupt line
	Phase  uint64 // cycle at which the line first asserts
	Period uint64 // cycles between assertions; 0 means assert exactly once
	Count  uint64 // maximum number of assertions; 0 means unlimited
}

// Ecall numbers understood by the simulator (a7 selects the call).
const (
	EcallExit    = 93 // a0 = exit code
	EcallPutchar = 64 // a0 = byte to append to console output
	EcallGetword = 63 // returns next verifier-input word in a0 (0 when exhausted)
)

// TraceBatchSize is how many buffered events the batched trace port
// delivers per RetireBatch call.
const TraceBatchSize = 256

// ExecError wraps a fault with the PC and cycle at which it occurred.
type ExecError struct {
	PC    uint32
	Cycle uint64
	Err   error
}

// Error implements error.
func (e *ExecError) Error() string {
	return fmt.Sprintf("cpu: at pc=%#08x cycle=%d: %v", e.PC, e.Cycle, e.Err)
}

// Unwrap exposes the underlying fault.
func (e *ExecError) Unwrap() error { return e.Err }

// predecoded is one instruction-cache line: the decoded instruction plus
// the control-flow metadata the trace port publishes, computed once at
// load time instead of per retirement.
type predecoded struct {
	inst    isa.Inst
	word    uint32
	kind    isa.ControlFlowKind
	linking bool
	valid   bool // false: the word does not decode (error surfaced on execution)
}

// CPU is the architectural state of the core.
type CPU struct {
	Regs [isa.NumRegs]uint32
	PC   uint32
	Mem  *mem.Memory

	// Cycle is the current clock cycle (monotonic; includes cost-model
	// stalls).
	Cycle uint64
	// Retired counts retired instructions.
	Retired uint64

	// Halted is set once the program executes the exit ecall.
	Halted   bool
	ExitCode uint32

	// Costs is the pipeline cycle-cost model.
	Costs CostModel

	// Trace receives every retired instruction; nil disables tracing.
	// Ignored when TraceBatch is set.
	Trace trace.Sink

	// TraceBatch is the fast trace port: events are buffered and
	// delivered in batches of up to TraceBatchSize, with a clock Sync at
	// halt. Takes precedence over Trace.
	TraceBatch trace.BatchSink
	// TraceCFOnly suppresses non-control-flow events on the batched
	// port. Only exact for observers that do not key internal state to
	// non-control-flow retirements (see core.Device.CFOnlyCompatible).
	TraceCFOnly bool

	// Input is the verifier-supplied input word stream i (§3), consumed
	// by EcallGetword.
	Input []uint32
	// Output accumulates EcallPutchar bytes.
	Output []byte

	// IRQ configures the deterministic interrupt line; the zero value
	// disables it.
	IRQ IRQSchedule

	inputPos int

	// Interrupt state: epc is the PC the handler returns to via mret,
	// inISR blocks nested dispatch, irqTaken counts dispatches so the
	// next assertion cycle (Phase + irqTaken*Period) needs no timer
	// state that could drift across Reset.
	epc      uint32
	inISR    bool
	irqTaken uint64

	// Predecoded instruction cache over the rx text segment (immutable
	// after load: the adversary cannot write executable memory, so the
	// cache can never go stale). PCs outside it fall back to
	// Mem.Fetch + isa.Decode.
	icache     []predecoded
	icacheBase uint32

	batch []trace.Event
}

// New returns a CPU over the given memory with the default cost model.
// The stack pointer must be set by the caller (or via Reset).
func New(m *mem.Memory) *CPU {
	return &CPU{Mem: m, Costs: DefaultCostModel}
}

// Reset prepares the core to run from entry with the given stack top.
// The instruction cache, if any, is retained: the rx image is unchanged.
//
//lofat:zeroalloc
func (c *CPU) Reset(entry, stackTop uint32) {
	c.Regs = [isa.NumRegs]uint32{}
	c.Regs[isa.SP] = stackTop
	c.PC = entry
	c.Cycle = 0
	c.Retired = 0
	c.Halted = false
	c.ExitCode = 0
	c.Output = c.Output[:0]
	c.inputPos = 0
	c.batch = c.batch[:0]
	c.epc = 0
	c.inISR = false
	c.irqTaken = 0
}

// InISR reports whether the core is currently executing an interrupt
// handler (between vector dispatch and mret).
//
//lofat:zeroalloc
func (c *CPU) InISR() bool { return c.inISR }

// IRQsTaken reports how many interrupt dispatches have occurred since
// Reset.
//
//lofat:zeroalloc
func (c *CPU) IRQsTaken() uint64 { return c.irqTaken }

// Predecode decodes a text image once into the instruction cache. base
// must be 4-byte aligned. Words that do not decode are cached as invalid
// and surface the identical decode error if the PC ever reaches them.
func (c *CPU) Predecode(base uint32, text []byte) {
	n := len(text) / 4
	c.icacheBase = base
	if cap(c.icache) >= n {
		c.icache = c.icache[:n]
	} else {
		c.icache = make([]predecoded, n)
	}
	for i := 0; i < n; i++ {
		word := uint32(text[4*i]) | uint32(text[4*i+1])<<8 |
			uint32(text[4*i+2])<<16 | uint32(text[4*i+3])<<24
		p := predecoded{word: word}
		if in, err := isa.Decode(word); err == nil {
			p.inst = in
			p.kind = isa.Classify(in)
			p.linking = isa.IsLinking(in)
			p.valid = true
		}
		c.icache[i] = p
	}
}

// ClearPredecode drops the instruction cache, forcing a fetch+decode per
// step. Kept so differential tests can pin the seed slow path.
func (c *CPU) ClearPredecode() {
	c.icache = nil
	c.icacheBase = 0
}

// Step fetches, decodes and executes one instruction, advancing the
// cycle counter per the cost model and publishing the retirement event.
func (c *CPU) Step() error {
	if c.Halted {
		return fmt.Errorf("cpu: step after halt")
	}
	return c.step()
}

// step is Step without the halt guard (hoisted by Run's loop condition).
//
//lofat:zeroalloc
func (c *CPU) step() error {
	if c.IRQ.Vector != 0 && c.pendingIRQ() {
		c.takeIRQ()
	}
	pc := c.PC
	if off := pc - c.icacheBase; off&3 == 0 && uint64(off)>>2 < uint64(len(c.icache)) {
		p := &c.icache[off>>2]
		if !p.valid {
			//lofat:ignore zeroalloc cold fault path: re-decoding an invalid word ends the run
			_, err := isa.Decode(p.word)
			//lofat:ignore zeroalloc cold fault path: the run is over once an ExecError exists
			return &ExecError{PC: pc, Cycle: c.Cycle, Err: err}
		}
		return c.exec(pc, p)
	}
	word, err := c.Mem.Fetch(pc)
	if err != nil {
		//lofat:ignore zeroalloc cold fault path: the run is over once an ExecError exists
		return &ExecError{PC: pc, Cycle: c.Cycle, Err: err}
	}
	//lofat:ignore zeroalloc uncached decode is the pinned slow path (ClearPredecode harnesses only)
	in, err := isa.Decode(word)
	if err != nil {
		//lofat:ignore zeroalloc cold fault path: the run is over once an ExecError exists
		return &ExecError{PC: pc, Cycle: c.Cycle, Err: err}
	}
	p := predecoded{
		inst:    in,
		word:    word,
		kind:    isa.Classify(in),
		linking: isa.IsLinking(in),
		valid:   true,
	}
	return c.exec(pc, &p)
}

// pendingIRQ reports whether the interrupt line is asserted and
// dispatchable. The check is stateless over (Cycle, irqTaken) so the
// schedule replays identically no matter when IRQ was assigned relative
// to Reset: the nth dispatch is due once Cycle reaches
// Phase + n*Period, dispatch is blocked inside a handler, and Count
// (when non-zero) caps the total. Period 0 degenerates to a one-shot.
//
//lofat:zeroalloc
func (c *CPU) pendingIRQ() bool {
	if c.inISR {
		return false
	}
	if c.IRQ.Count != 0 && c.irqTaken >= c.IRQ.Count {
		return false
	}
	if c.IRQ.Period == 0 {
		return c.irqTaken == 0 && c.Cycle >= c.IRQ.Phase
	}
	return c.Cycle >= c.IRQ.Phase+c.irqTaken*c.IRQ.Period
}

// takeIRQ performs the hardware vector dispatch: save the interrupted
// PC, redirect to the vector, charge the entry cost, and publish a
// KindIRQEnter pseudo-event on the trace port. The event's (PC, NextPC)
// pair is (interrupted PC, vector) — the asynchronous edge the branch
// filter measures, bound to the exact interruption point. No
// instruction retires: Retired is untouched and Word/Inst are zero.
//
//lofat:zeroalloc
func (c *CPU) takeIRQ() {
	epc := c.PC
	c.epc = epc
	c.inISR = true
	c.irqTaken++
	c.Cycle += c.Costs.IRQExtra
	c.PC = c.IRQ.Vector
	c.emit(trace.Event{
		Cycle:  c.Cycle,
		PC:     epc,
		Kind:   isa.KindIRQEnter,
		Taken:  true,
		NextPC: c.IRQ.Vector,
	})
}

// set writes a register, honouring the hardwired x0.
//
//lofat:zeroalloc
func (c *CPU) set(r isa.Reg, v uint32) {
	if r != isa.Zero {
		c.Regs[r] = v
	}
}

// exec executes one predecoded instruction at pc: the flattened hot
// loop body, reading and writing the register file directly.
//
//lofat:zeroalloc
func (c *CPU) exec(pc uint32, p *predecoded) error {
	in := p.inst
	cost := c.Costs.Base
	nextPC := pc + 4
	taken := false
	var err error

	switch in.Op {
	case isa.OpLUI:
		c.set(in.Rd, uint32(in.Imm))
	case isa.OpAUIPC:
		c.set(in.Rd, pc+uint32(in.Imm))

	case isa.OpJAL:
		c.set(in.Rd, pc+4)
		nextPC = pc + uint32(in.Imm)
		taken = true
		cost += c.Costs.TakenExtra
	case isa.OpJALR:
		t := (c.Regs[in.Rs1] + uint32(in.Imm)) &^ 1
		c.set(in.Rd, pc+4)
		nextPC = t
		taken = true
		cost += c.Costs.TakenExtra

	case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU:
		a, b := c.Regs[in.Rs1], c.Regs[in.Rs2]
		switch in.Op {
		case isa.OpBEQ:
			taken = a == b
		case isa.OpBNE:
			taken = a != b
		case isa.OpBLT:
			taken = int32(a) < int32(b)
		case isa.OpBGE:
			taken = int32(a) >= int32(b)
		case isa.OpBLTU:
			taken = a < b
		case isa.OpBGEU:
			taken = a >= b
		}
		if taken {
			nextPC = pc + uint32(in.Imm)
			cost += c.Costs.TakenExtra
		}

	case isa.OpLB, isa.OpLH, isa.OpLW, isa.OpLBU, isa.OpLHU:
		addr := c.Regs[in.Rs1] + uint32(in.Imm)
		var v uint32
		switch in.Op {
		case isa.OpLB:
			b, e := c.Mem.LoadByte(addr)
			v, err = uint32(int32(int8(b))), e
		case isa.OpLBU:
			b, e := c.Mem.LoadByte(addr)
			v, err = uint32(b), e
		case isa.OpLH:
			h, e := c.Mem.LoadHalf(addr)
			v, err = uint32(int32(int16(h))), e
		case isa.OpLHU:
			h, e := c.Mem.LoadHalf(addr)
			v, err = uint32(h), e
		case isa.OpLW:
			v, err = c.Mem.LoadWord(addr)
		}
		if err != nil {
			//lofat:ignore zeroalloc cold fault path: the run is over once an ExecError exists
			return &ExecError{PC: pc, Cycle: c.Cycle, Err: err}
		}
		c.set(in.Rd, v)
		cost += c.Costs.LoadExtra

	case isa.OpSB, isa.OpSH, isa.OpSW:
		addr := c.Regs[in.Rs1] + uint32(in.Imm)
		v := c.Regs[in.Rs2]
		switch in.Op {
		case isa.OpSB:
			err = c.Mem.StoreByte(addr, byte(v))
		case isa.OpSH:
			err = c.Mem.StoreHalf(addr, uint16(v))
		case isa.OpSW:
			err = c.Mem.StoreWord(addr, v)
		}
		if err != nil {
			//lofat:ignore zeroalloc cold fault path: the run is over once an ExecError exists
			return &ExecError{PC: pc, Cycle: c.Cycle, Err: err}
		}

	case isa.OpADDI:
		c.set(in.Rd, c.Regs[in.Rs1]+uint32(in.Imm))
	case isa.OpSLTI:
		c.set(in.Rd, boolToU32(int32(c.Regs[in.Rs1]) < in.Imm))
	case isa.OpSLTIU:
		c.set(in.Rd, boolToU32(c.Regs[in.Rs1] < uint32(in.Imm)))
	case isa.OpXORI:
		c.set(in.Rd, c.Regs[in.Rs1]^uint32(in.Imm))
	case isa.OpORI:
		c.set(in.Rd, c.Regs[in.Rs1]|uint32(in.Imm))
	case isa.OpANDI:
		c.set(in.Rd, c.Regs[in.Rs1]&uint32(in.Imm))
	case isa.OpSLLI:
		c.set(in.Rd, c.Regs[in.Rs1]<<uint(in.Imm))
	case isa.OpSRLI:
		c.set(in.Rd, c.Regs[in.Rs1]>>uint(in.Imm))
	case isa.OpSRAI:
		c.set(in.Rd, uint32(int32(c.Regs[in.Rs1])>>uint(in.Imm)))

	case isa.OpADD:
		c.set(in.Rd, c.Regs[in.Rs1]+c.Regs[in.Rs2])
	case isa.OpSUB:
		c.set(in.Rd, c.Regs[in.Rs1]-c.Regs[in.Rs2])
	case isa.OpSLL:
		c.set(in.Rd, c.Regs[in.Rs1]<<(c.Regs[in.Rs2]&31))
	case isa.OpSLT:
		c.set(in.Rd, boolToU32(int32(c.Regs[in.Rs1]) < int32(c.Regs[in.Rs2])))
	case isa.OpSLTU:
		c.set(in.Rd, boolToU32(c.Regs[in.Rs1] < c.Regs[in.Rs2]))
	case isa.OpXOR:
		c.set(in.Rd, c.Regs[in.Rs1]^c.Regs[in.Rs2])
	case isa.OpSRL:
		c.set(in.Rd, c.Regs[in.Rs1]>>(c.Regs[in.Rs2]&31))
	case isa.OpSRA:
		c.set(in.Rd, uint32(int32(c.Regs[in.Rs1])>>(c.Regs[in.Rs2]&31)))
	case isa.OpOR:
		c.set(in.Rd, c.Regs[in.Rs1]|c.Regs[in.Rs2])
	case isa.OpAND:
		c.set(in.Rd, c.Regs[in.Rs1]&c.Regs[in.Rs2])

	case isa.OpMUL:
		c.set(in.Rd, c.Regs[in.Rs1]*c.Regs[in.Rs2])
		cost += c.Costs.MulExtra
	case isa.OpMULH:
		c.set(in.Rd, uint32(uint64(int64(int32(c.Regs[in.Rs1]))*int64(int32(c.Regs[in.Rs2])))>>32))
		cost += c.Costs.MulExtra
	case isa.OpMULHSU:
		c.set(in.Rd, uint32(uint64(int64(int32(c.Regs[in.Rs1]))*int64(uint64(c.Regs[in.Rs2])))>>32))
		cost += c.Costs.MulExtra
	case isa.OpMULHU:
		c.set(in.Rd, uint32(uint64(c.Regs[in.Rs1])*uint64(c.Regs[in.Rs2])>>32))
		cost += c.Costs.MulExtra
	case isa.OpDIV:
		a, b := int32(c.Regs[in.Rs1]), int32(c.Regs[in.Rs2])
		switch {
		case b == 0:
			c.set(in.Rd, 0xFFFFFFFF)
		case a == -1<<31 && b == -1:
			c.set(in.Rd, uint32(a))
		default:
			c.set(in.Rd, uint32(a/b))
		}
		cost += c.Costs.DivExtra
	case isa.OpDIVU:
		a, b := c.Regs[in.Rs1], c.Regs[in.Rs2]
		if b == 0 {
			c.set(in.Rd, 0xFFFFFFFF)
		} else {
			c.set(in.Rd, a/b)
		}
		cost += c.Costs.DivExtra
	case isa.OpREM:
		a, b := int32(c.Regs[in.Rs1]), int32(c.Regs[in.Rs2])
		switch {
		case b == 0:
			c.set(in.Rd, uint32(a))
		case a == -1<<31 && b == -1:
			c.set(in.Rd, 0)
		default:
			c.set(in.Rd, uint32(a%b))
		}
		cost += c.Costs.DivExtra
	case isa.OpREMU:
		a, b := c.Regs[in.Rs1], c.Regs[in.Rs2]
		if b == 0 {
			c.set(in.Rd, a)
		} else {
			c.set(in.Rd, a%b)
		}
		cost += c.Costs.DivExtra

	case isa.OpFENCE:
		// no-op in a single-core model

	case isa.OpECALL:
		cost += c.Costs.EcallExtra
		switch c.Regs[isa.A7] {
		case EcallExit:
			c.Halted = true
			c.ExitCode = c.Regs[isa.A0]
		case EcallPutchar:
			c.Output = append(c.Output, byte(c.Regs[isa.A0]))
		case EcallGetword:
			var v uint32
			if c.inputPos < len(c.Input) {
				v = c.Input[c.inputPos]
				c.inputPos++
			}
			c.set(isa.A0, v)
		default:
			//lofat:ignore zeroalloc cold fault path: unknown ecall halts the run
			err = fmt.Errorf("unknown ecall %d", c.Regs[isa.A7])
			//lofat:ignore zeroalloc cold fault path: the run is over once an ExecError exists
			return &ExecError{PC: pc, Cycle: c.Cycle, Err: err}
		}

	case isa.OpEBREAK:
		//lofat:ignore zeroalloc cold fault path: ebreak halts the run
		return &ExecError{PC: pc, Cycle: c.Cycle, Err: fmt.Errorf("ebreak")}

	case isa.OpMRET:
		if !c.inISR {
			//lofat:ignore zeroalloc cold fault path: mret outside a handler halts the run
			return &ExecError{PC: pc, Cycle: c.Cycle, Err: fmt.Errorf("mret outside interrupt handler")}
		}
		nextPC = c.epc
		c.inISR = false
		taken = true
		cost += c.Costs.TakenExtra

	default:
		//lofat:ignore zeroalloc cold fault path: an unimplemented opcode halts the run
		return &ExecError{PC: pc, Cycle: c.Cycle, Err: fmt.Errorf("unimplemented opcode %v", in.Op)}
	}

	c.Cycle += cost
	c.Retired++
	c.PC = nextPC

	c.emit(trace.Event{
		Cycle:   c.Cycle,
		PC:      pc,
		Word:    p.word,
		Inst:    in,
		Kind:    p.kind,
		Taken:   taken,
		NextPC:  nextPC,
		Linking: p.linking,
	})
	return nil
}

// emit publishes one retirement (or interrupt-dispatch pseudo-event) on
// whichever trace port is wired, applying the control-flow-only mask
// and the halt-time flush on the batched port. Shared by the
// instruction hot loop and takeIRQ so both ports see identical events
// in identical order.
//
//lofat:zeroalloc
func (c *CPU) emit(e trace.Event) {
	if c.TraceBatch != nil {
		if !(c.TraceCFOnly && e.Kind == isa.KindNone) {
			if c.batch == nil {
				//lofat:ignore zeroalloc one-time lazy batch buffer; reused (and Reset-retained) afterwards
				c.batch = make([]trace.Event, 0, TraceBatchSize)
			}
			c.batch = append(c.batch, e)
			if len(c.batch) >= TraceBatchSize {
				c.flushBatch()
			}
		}
		if c.Halted {
			c.FlushTrace()
		}
	} else if c.Trace != nil {
		c.Trace.Retire(e)
	}
}

//lofat:zeroalloc
func (c *CPU) flushBatch() {
	if len(c.batch) > 0 {
		c.TraceBatch.RetireBatch(c.batch)
		c.batch = c.batch[:0]
	}
}

// FlushTrace delivers any buffered batched-trace events and syncs the
// observer clock to the core clock. Called automatically at halt;
// callers that stop stepping before the exit ecall (fixed-step harnesses)
// must call it before finalizing the observer.
//
//lofat:zeroalloc
func (c *CPU) FlushTrace() {
	if c.TraceBatch == nil {
		return
	}
	c.flushBatch()
	c.TraceBatch.Sync(c.Cycle)
}

// Run executes until the program halts or maxInstructions retire.
func (c *CPU) Run(maxInstructions uint64) error {
	budget := maxInstructions
	for !c.Halted {
		if budget == 0 {
			return fmt.Errorf("cpu: instruction budget %d exhausted at pc=%#08x", maxInstructions, c.PC)
		}
		budget--
		if err := c.step(); err != nil {
			return err
		}
	}
	return nil
}

//lofat:zeroalloc
func boolToU32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
