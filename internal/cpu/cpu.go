// Package cpu is a behavioural model of the Pulpino-class 32-bit RISC-V
// core the paper prototypes on: a single in-order RV32IM core for
// low-end embedded systems. It executes one instruction per Step with a
// simple cycle-cost model (§6.1 cares about *relative* overheads — the
// C-FLAT baseline's instrumentation cycles vs. LO-FAT's zero stalls —
// not absolute IPC), and publishes every retired instruction on a trace
// port that LO-FAT taps in parallel, exactly as the hardware does.
package cpu

import (
	"fmt"

	"lofat/internal/isa"
	"lofat/internal/mem"
	"lofat/internal/trace"
)

// CostModel holds per-instruction-class cycle costs for the in-order
// pipeline. Defaults approximate the 4-stage Pulpino RI5CY core.
type CostModel struct {
	Base       uint64 // every instruction
	TakenExtra uint64 // extra cycles for a taken control transfer (flush)
	LoadExtra  uint64 // extra cycles for loads (use-stall upper bound)
	MulExtra   uint64 // extra cycles for multiply
	DivExtra   uint64 // extra cycles for divide/remainder
	EcallExtra uint64 // privileged-trap entry cost
}

// DefaultCostModel approximates the Pulpino RI5CY timing.
var DefaultCostModel = CostModel{
	Base:       1,
	TakenExtra: 2,
	LoadExtra:  1,
	MulExtra:   0,
	DivExtra:   34,
	EcallExtra: 4,
}

// Ecall numbers understood by the simulator (a7 selects the call).
const (
	EcallExit    = 93 // a0 = exit code
	EcallPutchar = 64 // a0 = byte to append to console output
	EcallGetword = 63 // returns next verifier-input word in a0 (0 when exhausted)
)

// ExecError wraps a fault with the PC and cycle at which it occurred.
type ExecError struct {
	PC    uint32
	Cycle uint64
	Err   error
}

// Error implements error.
func (e *ExecError) Error() string {
	return fmt.Sprintf("cpu: at pc=%#08x cycle=%d: %v", e.PC, e.Cycle, e.Err)
}

// Unwrap exposes the underlying fault.
func (e *ExecError) Unwrap() error { return e.Err }

// CPU is the architectural state of the core.
type CPU struct {
	Regs [isa.NumRegs]uint32
	PC   uint32
	Mem  *mem.Memory

	// Cycle is the current clock cycle (monotonic; includes cost-model
	// stalls).
	Cycle uint64
	// Retired counts retired instructions.
	Retired uint64

	// Halted is set once the program executes the exit ecall.
	Halted   bool
	ExitCode uint32

	// Costs is the pipeline cycle-cost model.
	Costs CostModel

	// Trace receives every retired instruction; nil disables tracing.
	Trace trace.Sink

	// Input is the verifier-supplied input word stream i (§3), consumed
	// by EcallGetword.
	Input []uint32
	// Output accumulates EcallPutchar bytes.
	Output []byte

	inputPos int
}

// New returns a CPU over the given memory with the default cost model.
// The stack pointer must be set by the caller (or via Reset).
func New(m *mem.Memory) *CPU {
	return &CPU{Mem: m, Costs: DefaultCostModel}
}

// Reset prepares the core to run from entry with the given stack top.
func (c *CPU) Reset(entry, stackTop uint32) {
	c.Regs = [isa.NumRegs]uint32{}
	c.Regs[isa.SP] = stackTop
	c.PC = entry
	c.Cycle = 0
	c.Retired = 0
	c.Halted = false
	c.ExitCode = 0
	c.Output = c.Output[:0]
	c.inputPos = 0
}

// Step fetches, decodes and executes one instruction, advancing the
// cycle counter per the cost model and publishing the retirement event.
func (c *CPU) Step() error {
	if c.Halted {
		return fmt.Errorf("cpu: step after halt")
	}
	pc := c.PC
	word, err := c.Mem.Fetch(pc)
	if err != nil {
		return &ExecError{PC: pc, Cycle: c.Cycle, Err: err}
	}
	in, err := isa.Decode(word)
	if err != nil {
		return &ExecError{PC: pc, Cycle: c.Cycle, Err: err}
	}

	cost := c.Costs.Base
	nextPC := pc + 4
	taken := false

	reg := func(r isa.Reg) uint32 { return c.Regs[r] }
	setReg := func(r isa.Reg, v uint32) {
		if r != isa.Zero {
			c.Regs[r] = v
		}
	}

	switch in.Op {
	case isa.OpLUI:
		setReg(in.Rd, uint32(in.Imm))
	case isa.OpAUIPC:
		setReg(in.Rd, pc+uint32(in.Imm))

	case isa.OpJAL:
		setReg(in.Rd, pc+4)
		nextPC = pc + uint32(in.Imm)
		taken = true
		cost += c.Costs.TakenExtra
	case isa.OpJALR:
		t := (reg(in.Rs1) + uint32(in.Imm)) &^ 1
		setReg(in.Rd, pc+4)
		nextPC = t
		taken = true
		cost += c.Costs.TakenExtra

	case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU:
		a, b := reg(in.Rs1), reg(in.Rs2)
		switch in.Op {
		case isa.OpBEQ:
			taken = a == b
		case isa.OpBNE:
			taken = a != b
		case isa.OpBLT:
			taken = int32(a) < int32(b)
		case isa.OpBGE:
			taken = int32(a) >= int32(b)
		case isa.OpBLTU:
			taken = a < b
		case isa.OpBGEU:
			taken = a >= b
		}
		if taken {
			nextPC = pc + uint32(in.Imm)
			cost += c.Costs.TakenExtra
		}

	case isa.OpLB, isa.OpLH, isa.OpLW, isa.OpLBU, isa.OpLHU:
		addr := reg(in.Rs1) + uint32(in.Imm)
		var v uint32
		switch in.Op {
		case isa.OpLB:
			b, e := c.Mem.LoadByte(addr)
			v, err = uint32(int32(int8(b))), e
		case isa.OpLBU:
			b, e := c.Mem.LoadByte(addr)
			v, err = uint32(b), e
		case isa.OpLH:
			h, e := c.Mem.LoadHalf(addr)
			v, err = uint32(int32(int16(h))), e
		case isa.OpLHU:
			h, e := c.Mem.LoadHalf(addr)
			v, err = uint32(h), e
		case isa.OpLW:
			v, err = c.Mem.LoadWord(addr)
		}
		if err != nil {
			return &ExecError{PC: pc, Cycle: c.Cycle, Err: err}
		}
		setReg(in.Rd, v)
		cost += c.Costs.LoadExtra

	case isa.OpSB, isa.OpSH, isa.OpSW:
		addr := reg(in.Rs1) + uint32(in.Imm)
		v := reg(in.Rs2)
		switch in.Op {
		case isa.OpSB:
			err = c.Mem.StoreByte(addr, byte(v))
		case isa.OpSH:
			err = c.Mem.StoreHalf(addr, uint16(v))
		case isa.OpSW:
			err = c.Mem.StoreWord(addr, v)
		}
		if err != nil {
			return &ExecError{PC: pc, Cycle: c.Cycle, Err: err}
		}

	case isa.OpADDI:
		setReg(in.Rd, reg(in.Rs1)+uint32(in.Imm))
	case isa.OpSLTI:
		setReg(in.Rd, boolToU32(int32(reg(in.Rs1)) < in.Imm))
	case isa.OpSLTIU:
		setReg(in.Rd, boolToU32(reg(in.Rs1) < uint32(in.Imm)))
	case isa.OpXORI:
		setReg(in.Rd, reg(in.Rs1)^uint32(in.Imm))
	case isa.OpORI:
		setReg(in.Rd, reg(in.Rs1)|uint32(in.Imm))
	case isa.OpANDI:
		setReg(in.Rd, reg(in.Rs1)&uint32(in.Imm))
	case isa.OpSLLI:
		setReg(in.Rd, reg(in.Rs1)<<uint(in.Imm))
	case isa.OpSRLI:
		setReg(in.Rd, reg(in.Rs1)>>uint(in.Imm))
	case isa.OpSRAI:
		setReg(in.Rd, uint32(int32(reg(in.Rs1))>>uint(in.Imm)))

	case isa.OpADD:
		setReg(in.Rd, reg(in.Rs1)+reg(in.Rs2))
	case isa.OpSUB:
		setReg(in.Rd, reg(in.Rs1)-reg(in.Rs2))
	case isa.OpSLL:
		setReg(in.Rd, reg(in.Rs1)<<(reg(in.Rs2)&31))
	case isa.OpSLT:
		setReg(in.Rd, boolToU32(int32(reg(in.Rs1)) < int32(reg(in.Rs2))))
	case isa.OpSLTU:
		setReg(in.Rd, boolToU32(reg(in.Rs1) < reg(in.Rs2)))
	case isa.OpXOR:
		setReg(in.Rd, reg(in.Rs1)^reg(in.Rs2))
	case isa.OpSRL:
		setReg(in.Rd, reg(in.Rs1)>>(reg(in.Rs2)&31))
	case isa.OpSRA:
		setReg(in.Rd, uint32(int32(reg(in.Rs1))>>(reg(in.Rs2)&31)))
	case isa.OpOR:
		setReg(in.Rd, reg(in.Rs1)|reg(in.Rs2))
	case isa.OpAND:
		setReg(in.Rd, reg(in.Rs1)&reg(in.Rs2))

	case isa.OpMUL:
		setReg(in.Rd, reg(in.Rs1)*reg(in.Rs2))
		cost += c.Costs.MulExtra
	case isa.OpMULH:
		setReg(in.Rd, uint32(uint64(int64(int32(reg(in.Rs1)))*int64(int32(reg(in.Rs2))))>>32))
		cost += c.Costs.MulExtra
	case isa.OpMULHSU:
		setReg(in.Rd, uint32(uint64(int64(int32(reg(in.Rs1)))*int64(uint64(reg(in.Rs2))))>>32))
		cost += c.Costs.MulExtra
	case isa.OpMULHU:
		setReg(in.Rd, uint32(uint64(reg(in.Rs1))*uint64(reg(in.Rs2))>>32))
		cost += c.Costs.MulExtra
	case isa.OpDIV:
		a, b := int32(reg(in.Rs1)), int32(reg(in.Rs2))
		switch {
		case b == 0:
			setReg(in.Rd, 0xFFFFFFFF)
		case a == -1<<31 && b == -1:
			setReg(in.Rd, uint32(a))
		default:
			setReg(in.Rd, uint32(a/b))
		}
		cost += c.Costs.DivExtra
	case isa.OpDIVU:
		a, b := reg(in.Rs1), reg(in.Rs2)
		if b == 0 {
			setReg(in.Rd, 0xFFFFFFFF)
		} else {
			setReg(in.Rd, a/b)
		}
		cost += c.Costs.DivExtra
	case isa.OpREM:
		a, b := int32(reg(in.Rs1)), int32(reg(in.Rs2))
		switch {
		case b == 0:
			setReg(in.Rd, uint32(a))
		case a == -1<<31 && b == -1:
			setReg(in.Rd, 0)
		default:
			setReg(in.Rd, uint32(a%b))
		}
		cost += c.Costs.DivExtra
	case isa.OpREMU:
		a, b := reg(in.Rs1), reg(in.Rs2)
		if b == 0 {
			setReg(in.Rd, a)
		} else {
			setReg(in.Rd, a%b)
		}
		cost += c.Costs.DivExtra

	case isa.OpFENCE:
		// no-op in a single-core model

	case isa.OpECALL:
		cost += c.Costs.EcallExtra
		switch reg(isa.A7) {
		case EcallExit:
			c.Halted = true
			c.ExitCode = reg(isa.A0)
		case EcallPutchar:
			c.Output = append(c.Output, byte(reg(isa.A0)))
		case EcallGetword:
			var v uint32
			if c.inputPos < len(c.Input) {
				v = c.Input[c.inputPos]
				c.inputPos++
			}
			setReg(isa.A0, v)
		default:
			return &ExecError{PC: pc, Cycle: c.Cycle,
				Err: fmt.Errorf("unknown ecall %d", reg(isa.A7))}
		}

	case isa.OpEBREAK:
		return &ExecError{PC: pc, Cycle: c.Cycle, Err: fmt.Errorf("ebreak")}

	default:
		return &ExecError{PC: pc, Cycle: c.Cycle, Err: fmt.Errorf("unimplemented opcode %v", in.Op)}
	}

	c.Cycle += cost
	c.Retired++
	c.PC = nextPC

	if c.Trace != nil {
		kind := isa.Classify(in)
		c.Trace.Retire(trace.Event{
			Cycle:   c.Cycle,
			PC:      pc,
			Word:    word,
			Inst:    in,
			Kind:    kind,
			Taken:   taken,
			NextPC:  nextPC,
			Linking: isa.IsLinking(in),
		})
	}
	return nil
}

// Run executes until the program halts or maxInstructions retire.
func (c *CPU) Run(maxInstructions uint64) error {
	start := c.Retired
	for !c.Halted {
		if c.Retired-start >= maxInstructions {
			return fmt.Errorf("cpu: instruction budget %d exhausted at pc=%#08x", maxInstructions, c.PC)
		}
		if err := c.Step(); err != nil {
			return err
		}
	}
	return nil
}

func boolToU32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
