package cpu

import (
	"fmt"
	"sync"

	"lofat/internal/asm"
	"lofat/internal/mem"
)

// Machine bundles a loaded program with its memory and core, ready to run.
type Machine struct {
	CPU      *CPU
	Mem      *mem.Memory
	Program  *asm.Program
	Entry    uint32
	StackTop uint32

	poolKey machineKey
	pooled  bool
}

// Reset restores the machine to its just-loaded state: all segments
// re-zeroed (dirty windows only), the text and data images re-installed,
// and the core reset to the entry point. The predecoded instruction
// cache is retained — the rx text image cannot have changed.
func (m *Machine) Reset() error {
	m.Mem.ResetData()
	if err := m.Mem.LoadImage(m.Program.TextBase, m.Program.Text); err != nil {
		return err
	}
	if len(m.Program.Data) > 0 {
		if err := m.Mem.LoadImage(m.Program.DataBase, m.Program.Data); err != nil {
			return err
		}
	}
	m.CPU.Reset(m.Entry, m.StackTop)
	return nil
}

// LoadOptions tune the memory map built around an assembled program.
type LoadOptions struct {
	// BSSSize is extra zeroed rw space mapped after the initialised
	// data image (default 64 KiB).
	BSSSize int
	// StackSize is the size of the stack segment (default 64 KiB).
	StackSize int
	// StackBase is the base address of the stack segment.
	StackBase uint32
	// EntryLabel is the label execution starts at (default "main",
	// falling back to the first text address).
	EntryLabel string
}

func (o *LoadOptions) fill() {
	if o.BSSSize == 0 {
		o.BSSSize = 64 << 10
	}
	if o.StackSize == 0 {
		o.StackSize = 64 << 10
	}
	if o.StackBase == 0 {
		o.StackBase = 0x7FF0_0000
	}
	if o.EntryLabel == "" {
		o.EntryLabel = "main"
	}
}

// Load builds the embedded memory map for an assembled program —
// rx text, rw data+bss, rw stack — loads the images, and returns a
// reset Machine. It is the trusted-boot step of the paper's model: the
// binary in rx memory is exactly the statically-attested image.
func Load(p *asm.Program, opts LoadOptions) (*Machine, error) {
	opts.fill()
	m := mem.New()

	textSize := len(p.Text)
	if textSize == 0 {
		return nil, fmt.Errorf("cpu: load: empty text segment")
	}
	if _, err := m.Map("text", p.TextBase, textSize, mem.PermR|mem.PermX); err != nil {
		return nil, err
	}
	dataSize := len(p.Data) + opts.BSSSize
	if _, err := m.Map("data", p.DataBase, dataSize, mem.PermR|mem.PermW); err != nil {
		return nil, err
	}
	if _, err := m.Map("stack", opts.StackBase, opts.StackSize, mem.PermR|mem.PermW); err != nil {
		return nil, err
	}
	if err := m.LoadImage(p.TextBase, p.Text); err != nil {
		return nil, err
	}
	if len(p.Data) > 0 {
		if err := m.LoadImage(p.DataBase, p.Data); err != nil {
			return nil, err
		}
	}

	entry, ok := p.Entry(opts.EntryLabel)
	if !ok {
		entry = p.TextBase
	}
	stackTop := opts.StackBase + uint32(opts.StackSize) - 16

	c := New(m)
	// The rx text image is immutable for the whole run (the adversary
	// cannot write executable memory), so decode it exactly once.
	c.Predecode(p.TextBase, p.Text)
	c.Reset(entry, stackTop)
	return &Machine{CPU: c, Mem: m, Program: p, Entry: entry, StackTop: stackTop}, nil
}

// machineKey identifies a pool of interchangeable machines: same
// program image, same memory map.
type machineKey struct {
	prog *asm.Program
	opts LoadOptions
}

// machinePools maps machineKey -> *sync.Pool of *Machine.
var machinePools sync.Map

// AcquireMachine returns a reset, ready-to-run machine for the program,
// reusing a pooled instance — memory map, zeroed segments, predecoded
// instruction cache — when one is available. Repeated measurements of
// the same program (fleet sweeps, golden-run verification) skip the
// per-run map/decode cost entirely. Release with ReleaseMachine.
func AcquireMachine(p *asm.Program, opts LoadOptions) (*Machine, error) {
	opts.fill()
	key := machineKey{prog: p, opts: opts}
	v, ok := machinePools.Load(key)
	if !ok {
		v, _ = machinePools.LoadOrStore(key, &sync.Pool{})
	}
	pool := v.(*sync.Pool)
	if m, _ := pool.Get().(*Machine); m != nil {
		if err := m.Reset(); err != nil {
			return nil, err
		}
		return m, nil
	}
	m, err := Load(p, opts)
	if err != nil {
		return nil, err
	}
	m.poolKey = key
	m.pooled = true
	return m, nil
}

// ReleaseMachine returns a machine obtained from AcquireMachine to its
// pool. The machine must not be used afterwards. Trace attachments and
// input are dropped so the pool retains no caller references.
func ReleaseMachine(m *Machine) {
	if m == nil || !m.pooled {
		return
	}
	m.CPU.Trace = nil
	m.CPU.TraceBatch = nil
	m.CPU.TraceCFOnly = false
	m.CPU.Input = nil
	m.CPU.IRQ = IRQSchedule{}
	if v, ok := machinePools.Load(m.poolKey); ok {
		v.(*sync.Pool).Put(m)
	}
}

// MustLoadSource assembles and loads source, panicking on error; for
// tests and examples with known-good programs.
func MustLoadSource(source string) *Machine {
	p, err := asm.Assemble(source)
	if err != nil {
		panic(err)
	}
	mach, err := Load(p, LoadOptions{})
	if err != nil {
		panic(err)
	}
	return mach
}
