package cpu

import (
	"fmt"

	"lofat/internal/asm"
	"lofat/internal/mem"
)

// Machine bundles a loaded program with its memory and core, ready to run.
type Machine struct {
	CPU      *CPU
	Mem      *mem.Memory
	Program  *asm.Program
	Entry    uint32
	StackTop uint32
}

// LoadOptions tune the memory map built around an assembled program.
type LoadOptions struct {
	// BSSSize is extra zeroed rw space mapped after the initialised
	// data image (default 64 KiB).
	BSSSize int
	// StackSize is the size of the stack segment (default 64 KiB).
	StackSize int
	// StackBase is the base address of the stack segment.
	StackBase uint32
	// EntryLabel is the label execution starts at (default "main",
	// falling back to the first text address).
	EntryLabel string
}

func (o *LoadOptions) fill() {
	if o.BSSSize == 0 {
		o.BSSSize = 64 << 10
	}
	if o.StackSize == 0 {
		o.StackSize = 64 << 10
	}
	if o.StackBase == 0 {
		o.StackBase = 0x7FF0_0000
	}
	if o.EntryLabel == "" {
		o.EntryLabel = "main"
	}
}

// Load builds the embedded memory map for an assembled program —
// rx text, rw data+bss, rw stack — loads the images, and returns a
// reset Machine. It is the trusted-boot step of the paper's model: the
// binary in rx memory is exactly the statically-attested image.
func Load(p *asm.Program, opts LoadOptions) (*Machine, error) {
	opts.fill()
	m := mem.New()

	textSize := len(p.Text)
	if textSize == 0 {
		return nil, fmt.Errorf("cpu: load: empty text segment")
	}
	if _, err := m.Map("text", p.TextBase, textSize, mem.PermR|mem.PermX); err != nil {
		return nil, err
	}
	dataSize := len(p.Data) + opts.BSSSize
	if _, err := m.Map("data", p.DataBase, dataSize, mem.PermR|mem.PermW); err != nil {
		return nil, err
	}
	if _, err := m.Map("stack", opts.StackBase, opts.StackSize, mem.PermR|mem.PermW); err != nil {
		return nil, err
	}
	if err := m.LoadImage(p.TextBase, p.Text); err != nil {
		return nil, err
	}
	if len(p.Data) > 0 {
		if err := m.LoadImage(p.DataBase, p.Data); err != nil {
			return nil, err
		}
	}

	entry, ok := p.Entry(opts.EntryLabel)
	if !ok {
		entry = p.TextBase
	}
	stackTop := opts.StackBase + uint32(opts.StackSize) - 16

	c := New(m)
	c.Reset(entry, stackTop)
	return &Machine{CPU: c, Mem: m, Program: p, Entry: entry, StackTop: stackTop}, nil
}

// MustLoadSource assembles and loads source, panicking on error; for
// tests and examples with known-good programs.
func MustLoadSource(source string) *Machine {
	p, err := asm.Assemble(source)
	if err != nil {
		panic(err)
	}
	mach, err := Load(p, LoadOptions{})
	if err != nil {
		panic(err)
	}
	return mach
}
