package cpu

import (
	"testing"

	"lofat/internal/asm"
	"lofat/internal/isa"
	"lofat/internal/trace"
)

const reuseProg = `
	.data
counter:
	.word 0
	.text
main:
	la t0, counter
	lw t1, 0(t0)
	addi t1, t1, 1
	sw t1, 0(t0)
	li t2, 5
loop:
	addi t2, t2, -1
	bne t2, zero, loop
	mv a0, t1
	li a7, 93
	ecall
`

// TestMachineResetIsPristine proves Reset restores a just-loaded state:
// a program whose result depends on initial data-memory contents returns
// the same exit code on every reuse.
func TestMachineResetIsPristine(t *testing.T) {
	p, err := asm.Assemble(reuseProg)
	if err != nil {
		t.Fatal(err)
	}
	mach, err := Load(p, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := mach.Reset(); err != nil {
			t.Fatal(err)
		}
		if err := mach.CPU.Run(1000); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		// counter starts at 0 every run: exit code is always 1.
		if mach.CPU.ExitCode != 1 {
			t.Fatalf("run %d: exit %d, want 1 (stale data memory?)", i, mach.CPU.ExitCode)
		}
	}
}

// TestAcquireMachineReuses verifies the pool round-trip hands back the
// same machine, reset and with trace attachments dropped.
func TestAcquireMachineReuses(t *testing.T) {
	p, err := asm.Assemble(reuseProg)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := AcquireMachine(p, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m1.CPU.Trace = trace.SinkFunc(func(trace.Event) {})
	if err := m1.CPU.Run(1000); err != nil {
		t.Fatal(err)
	}
	ReleaseMachine(m1)

	m2, err := AcquireMachine(p, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ReleaseMachine(m2)
	if m2 != m1 {
		t.Skip("pool did not retain the machine (GC ran); nothing to verify")
	}
	if m2.CPU.Trace != nil || m2.CPU.TraceBatch != nil || m2.CPU.Input != nil {
		t.Fatal("pooled machine retained trace/input attachments")
	}
	if m2.CPU.Halted || m2.CPU.Retired != 0 || m2.CPU.PC != m2.Entry {
		t.Fatalf("pooled machine not reset: halted=%v retired=%d pc=%#x",
			m2.CPU.Halted, m2.CPU.Retired, m2.CPU.PC)
	}
	if err := m2.CPU.Run(1000); err != nil {
		t.Fatal(err)
	}
	if m2.CPU.ExitCode != 1 {
		t.Fatalf("reused machine exit %d, want 1", m2.CPU.ExitCode)
	}
}

// batchRecorder collects batched events and Sync calls.
type batchRecorder struct {
	events []trace.Event
	synced uint64
}

func (r *batchRecorder) RetireBatch(events []trace.Event) {
	r.events = append(r.events, events...)
}
func (r *batchRecorder) Sync(cycle uint64) { r.synced = cycle }

// TestBatchTraceMatchesSink proves the batched trace port delivers the
// identical event sequence as the per-event Sink, and that the
// control-flow-only mask drops exactly the KindNone events.
func TestBatchTraceMatchesSink(t *testing.T) {
	p, err := asm.Assemble(reuseProg)
	if err != nil {
		t.Fatal(err)
	}

	run := func(configure func(*CPU) func() []trace.Event) []trace.Event {
		mach, err := Load(p, LoadOptions{})
		if err != nil {
			t.Fatal(err)
		}
		collect := configure(mach.CPU)
		if err := mach.CPU.Run(1000); err != nil {
			t.Fatal(err)
		}
		return collect()
	}

	perEvent := run(func(c *CPU) func() []trace.Event {
		var evs []trace.Event
		c.Trace = trace.SinkFunc(func(e trace.Event) { evs = append(evs, e) })
		return func() []trace.Event { return evs }
	})
	batched := run(func(c *CPU) func() []trace.Event {
		r := &batchRecorder{}
		c.TraceBatch = r
		return func() []trace.Event { return r.events }
	})
	masked := run(func(c *CPU) func() []trace.Event {
		r := &batchRecorder{}
		c.TraceBatch = r
		c.TraceCFOnly = true
		return func() []trace.Event { return r.events }
	})

	if len(perEvent) == 0 {
		t.Fatal("no events")
	}
	if len(batched) != len(perEvent) {
		t.Fatalf("batched delivered %d events, per-event %d", len(batched), len(perEvent))
	}
	for i := range perEvent {
		if batched[i] != perEvent[i] {
			t.Fatalf("event %d differs: batched %+v, sink %+v", i, batched[i], perEvent[i])
		}
	}
	var wantMasked []trace.Event
	for _, e := range perEvent {
		if e.Kind != isa.KindNone {
			wantMasked = append(wantMasked, e)
		}
	}
	if len(masked) != len(wantMasked) {
		t.Fatalf("masked delivered %d events, want %d", len(masked), len(wantMasked))
	}
	for i := range wantMasked {
		if masked[i] != wantMasked[i] {
			t.Fatalf("masked event %d differs", i)
		}
	}
}

// TestBatchTraceSyncAtHalt verifies the observer clock is synced to the
// final core cycle even when the mask withholds the trailing events.
func TestBatchTraceSyncAtHalt(t *testing.T) {
	p, err := asm.Assemble(reuseProg)
	if err != nil {
		t.Fatal(err)
	}
	mach, err := Load(p, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := &batchRecorder{}
	mach.CPU.TraceBatch = r
	mach.CPU.TraceCFOnly = true
	if err := mach.CPU.Run(1000); err != nil {
		t.Fatal(err)
	}
	if r.synced != mach.CPU.Cycle {
		t.Fatalf("synced to cycle %d, core at %d", r.synced, mach.CPU.Cycle)
	}
}

// TestPredecodeFallback executes from a PC outside the instruction cache
// window (after clearing it mid-flight) to pin the fetch+decode
// fallback, and checks invalid cached words still error at execution.
func TestPredecodeFallback(t *testing.T) {
	p, err := asm.Assemble(reuseProg)
	if err != nil {
		t.Fatal(err)
	}
	mach, err := Load(p, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mach.CPU.ClearPredecode()
	if err := mach.CPU.Run(1000); err != nil {
		t.Fatal(err)
	}
	if mach.CPU.ExitCode != 1 {
		t.Fatalf("fallback path exit %d, want 1", mach.CPU.ExitCode)
	}

	// An undecodable word in the cache must fault with a decode error
	// when reached, exactly like the uncached path.
	bad := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	c := New(mach.Mem)
	c.Predecode(0x1000, bad)
	c.PC = 0x1000
	if err := c.Step(); err == nil {
		t.Fatal("invalid cached word did not fault")
	}
}
