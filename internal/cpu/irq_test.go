package cpu

import (
	"testing"

	"lofat/internal/asm"
	"lofat/internal/isa"
	"lofat/internal/trace"
)

// irqProg is a counting main loop plus an interrupt handler that bumps
// a counter word. The handler touches only t4/t5 so the interrupted
// loop's registers are preserved across any dispatch point.
const irqProg = `
	.data
count:
	.word 0
	.text
main:
	li   t0, 0
	li   t1, 64
loop:
	addi t0, t0, 1
	bne  t0, t1, loop
	la   t4, count
	lw   a0, 0(t4)
	li   a7, 93
	ecall
isr:
	la   t4, count
	lw   t5, 0(t4)
	addi t5, t5, 1
	sw   t5, 0(t4)
	mret
`

func loadIRQProg(t *testing.T) (*Machine, uint32) {
	t.Helper()
	p, err := asm.Assemble(irqProg)
	if err != nil {
		t.Fatal(err)
	}
	vector, ok := p.Entry("isr")
	if !ok {
		t.Fatal("no isr label")
	}
	mach, err := Load(p, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return mach, vector
}

// TestIRQDispatchAndReturn drives the deterministic interrupt line
// through a full program: every dispatch must publish a KindIRQEnter
// pseudo-event whose (PC, NextPC) pair is (interrupted PC, vector),
// every mret a KindIRQRet event resuming at the interrupted PC, and
// the program's exit code must count exactly the dispatches the
// schedule prescribes.
func TestIRQDispatchAndReturn(t *testing.T) {
	mach, vector := loadIRQProg(t)
	mach.CPU.IRQ = IRQSchedule{Vector: vector, Phase: 10, Period: 40, Count: 3}

	var enters, rets int
	var pendingEPC uint32
	mach.CPU.Trace = trace.SinkFunc(func(e trace.Event) {
		switch e.Kind {
		case isa.KindIRQEnter:
			enters++
			if e.NextPC != vector {
				t.Errorf("IRQ enter edge %#x->%#x, want dest %#x", e.PC, e.NextPC, vector)
			}
			if e.Word != 0 || e.Inst != (isa.Inst{}) {
				t.Errorf("IRQ enter pseudo-event carries an instruction: %+v", e)
			}
			if !e.IsInterrupt() {
				t.Error("IsInterrupt() = false for KindIRQEnter")
			}
			pendingEPC = e.PC
		case isa.KindIRQRet:
			rets++
			if e.NextPC != pendingEPC {
				t.Errorf("mret resumed at %#x, want interrupted PC %#x", e.NextPC, pendingEPC)
			}
		}
	})
	if err := mach.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := mach.CPU.Run(10000); err != nil {
		t.Fatal(err)
	}
	if enters != 3 || rets != 3 {
		t.Fatalf("enters=%d rets=%d, want 3/3 (Count=3)", enters, rets)
	}
	if got := mach.CPU.IRQsTaken(); got != 3 {
		t.Fatalf("IRQsTaken() = %d, want 3", got)
	}
	if mach.CPU.InISR() {
		t.Fatal("InISR() still true after halt")
	}
	if mach.CPU.ExitCode != 3 {
		t.Fatalf("exit code %d, want the 3 handler increments", mach.CPU.ExitCode)
	}
}

// TestIRQScheduleReplaysIdentically runs the same schedule twice and
// requires the full event streams to match event-for-event: the
// interrupt line is part of the deterministic measurement definition.
func TestIRQScheduleReplaysIdentically(t *testing.T) {
	mach, vector := loadIRQProg(t)
	capture := func() []trace.Event {
		var evs []trace.Event
		mach.CPU.Trace = trace.SinkFunc(func(e trace.Event) { evs = append(evs, e) })
		mach.CPU.IRQ = IRQSchedule{Vector: vector, Phase: 7, Period: 23}
		if err := mach.Reset(); err != nil {
			t.Fatal(err)
		}
		if err := mach.CPU.Run(10000); err != nil {
			t.Fatal(err)
		}
		return evs
	}
	a, b := capture(), capture()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs across replays:\n  %+v\n  %+v", i, a[i], b[i])
		}
	}
}

// TestIRQOneShotAndUnlimited pins the Period/Count degenerate cases:
// Period 0 fires exactly once, Count 0 leaves the line free-running.
func TestIRQOneShotAndUnlimited(t *testing.T) {
	mach, vector := loadIRQProg(t)
	run := func(s IRQSchedule) uint64 {
		mach.CPU.IRQ = s
		if err := mach.Reset(); err != nil {
			t.Fatal(err)
		}
		if err := mach.CPU.Run(10000); err != nil {
			t.Fatal(err)
		}
		return mach.CPU.IRQsTaken()
	}
	if n := run(IRQSchedule{Vector: vector, Phase: 5}); n != 1 {
		t.Fatalf("one-shot (Period 0) dispatched %d times, want 1", n)
	}
	if n := run(IRQSchedule{Vector: vector, Phase: 5, Period: 30}); n < 2 {
		t.Fatalf("free-running line dispatched %d times, want several", n)
	}
	if n := run(IRQSchedule{}); n != 0 {
		t.Fatalf("disabled line dispatched %d times, want 0", n)
	}
}

// TestMRETOutsideHandlerFaults: an mret with no interrupt in flight is
// a fault, not a silent jump — corrupted code memory must be detected.
func TestMRETOutsideHandlerFaults(t *testing.T) {
	p, err := asm.Assemble("main:\n\tmret\n")
	if err != nil {
		t.Fatal(err)
	}
	mach, err := Load(p, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := mach.CPU.Run(10); err == nil {
		t.Fatal("mret outside a handler did not fault")
	}
}

// TestIRQHotPathZeroAlloc extends the interpreter's zero-allocation
// proof to the interrupt path: dispatch (takeIRQ/pendingIRQ/emit) and
// mret return must not allocate either. Covers CPU.InISR and
// CPU.IRQsTaken as well.
func TestIRQHotPathZeroAlloc(t *testing.T) {
	mach, vector := loadIRQProg(t)
	var events uint64
	mach.CPU.Trace = trace.SinkFunc(func(trace.Event) { events++ })
	mach.CPU.IRQ = IRQSchedule{Vector: vector, Phase: 3, Period: 17}
	run := func() {
		if err := mach.Reset(); err != nil {
			panic(err)
		}
		if err := mach.CPU.Run(10000); err != nil {
			panic(err)
		}
		mach.CPU.FlushTrace()
		if mach.CPU.IRQsTaken() == 0 || mach.CPU.InISR() {
			panic("schedule did not dispatch")
		}
	}
	run() // warm lazy buffers
	if n := testing.AllocsPerRun(50, run); n != 0 {
		t.Fatalf("interrupt hot path allocates %v per run, want 0", n)
	}
	if events == 0 {
		t.Fatal("trace sink never saw an event")
	}
}

// TestReleaseMachineClearsIRQ: pooled machines must not leak one
// run's interrupt schedule into the next acquirer.
func TestReleaseMachineClearsIRQ(t *testing.T) {
	p, err := asm.Assemble(irqProg)
	if err != nil {
		t.Fatal(err)
	}
	mach, err := AcquireMachine(p, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	vector, _ := p.Entry("isr")
	mach.CPU.IRQ = IRQSchedule{Vector: vector, Phase: 1, Period: 10}
	ReleaseMachine(mach)
	mach2, err := AcquireMachine(p, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ReleaseMachine(mach2)
	if mach2.CPU.IRQ != (IRQSchedule{}) {
		t.Fatalf("pooled machine kept IRQ schedule %+v", mach2.CPU.IRQ)
	}
}
