package cpu

import (
	"testing"

	"lofat/internal/asm"
	"lofat/internal/trace"
)

const allocProg = `
	li t0, 0
	li t1, 32
loop:
	addi t0, t0, 1
	bne t0, t1, loop
	li a0, 0
	li a7, 93
	ecall
`

// TestRunHotPathZeroAlloc is the runtime proof behind the
// //lofat:zeroalloc annotations on the interpreter's fetch/decode/exec
// path: a predecoded counting loop runs to completion — with the trace
// batch draining into a sink — without a single steady-state
// allocation.
func TestRunHotPathZeroAlloc(t *testing.T) {
	p, err := asm.Assemble(allocProg)
	if err != nil {
		t.Fatal(err)
	}
	mach, err := Load(p, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var retired uint64
	mach.CPU.Trace = trace.SinkFunc(func(trace.Event) { retired++ })
	run := func() {
		if err := mach.Reset(); err != nil {
			panic(err)
		}
		if err := mach.CPU.Run(10000); err != nil {
			panic(err)
		}
		mach.CPU.FlushTrace()
	}
	run() // warm the lazy trace batch buffer
	if n := testing.AllocsPerRun(50, run); n != 0 {
		t.Fatalf("interpreter hot path allocates %v per run, want 0", n)
	}
	if retired == 0 {
		t.Fatal("trace sink never saw a retired instruction")
	}
}
