package sig

import (
	"crypto/rand"
	"testing"
)

func TestSignVerify(t *testing.T) {
	ks, err := GenerateKeyStore(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("attestation report payload")
	s := ks.Sign(msg)
	if err := Verify(ks.Public(), msg, s); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	ks, _ := GenerateKeyStore(rand.Reader)
	msg := []byte("payload")
	s := ks.Sign(msg)

	bad := append([]byte(nil), msg...)
	bad[0] ^= 1
	if err := Verify(ks.Public(), bad, s); err == nil {
		t.Error("tampered message verified")
	}

	badSig := append([]byte(nil), s...)
	badSig[0] ^= 1
	if err := Verify(ks.Public(), msg, badSig); err == nil {
		t.Error("tampered signature verified")
	}

	other, _ := GenerateKeyStore(rand.Reader)
	if err := Verify(other.Public(), msg, s); err == nil {
		t.Error("wrong key verified")
	}
}

func TestVerifyBadKeySize(t *testing.T) {
	if err := Verify([]byte{1, 2, 3}, []byte("m"), []byte("s")); err == nil {
		t.Error("short public key accepted")
	}
}

// Public returns a copy: mutating it must not affect the store.
func TestPublicIsCopy(t *testing.T) {
	ks, _ := GenerateKeyStore(rand.Reader)
	msg := []byte("m")
	s := ks.Sign(msg)
	pub := ks.Public()
	pub[0] ^= 0xFF
	if err := Verify(ks.Public(), msg, s); err != nil {
		t.Error("mutating the returned key corrupted the store")
	}
}

// Deterministic entropy gives deterministic keys (seeded provisioning).
func TestDeterministicProvisioning(t *testing.T) {
	a, err := GenerateKeyStore(zeroReader{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateKeyStore(zeroReader{})
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Public()) != string(b.Public()) {
		t.Error("same entropy, different keys")
	}
}

type zeroReader struct{}

func (zeroReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0x42
	}
	return len(p), nil
}
