// Package sig provides the attestation signature primitive and a model
// of the hardware-protected key store: "the signing key ... is stored by
// P in hardware-protected secure memory, e.g., a register that is
// accessible only to LO-FAT" (§3). The simulated application software
// has no interface to the private key: the store only exposes Sign.
package sig

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"io"
)

// KeyStore holds the prover's signing key in "hardware". The private
// key is deliberately unexported and unreachable from outside this
// package; only LO-FAT's report generation calls Sign.
type KeyStore struct {
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey
}

// GenerateKeyStore provisions a key store from the given entropy source
// (device personalisation at manufacture time).
func GenerateKeyStore(rand io.Reader) (*KeyStore, error) {
	pub, priv, err := ed25519.GenerateKey(rand)
	if err != nil {
		return nil, fmt.Errorf("sig: generate: %w", err)
	}
	return &KeyStore{priv: priv, pub: pub}, nil
}

// Public returns the verification key pk, shared with the verifier
// during enrolment.
func (k *KeyStore) Public() ed25519.PublicKey {
	out := make(ed25519.PublicKey, len(k.pub))
	copy(out, k.pub)
	return out
}

// Sign produces the attestation signature over msg.
func (k *KeyStore) Sign(msg []byte) []byte {
	return ed25519.Sign(k.priv, msg)
}

// ErrBadSignature is returned when verification fails.
var ErrBadSignature = errors.New("sig: signature verification failed")

// Verify checks sig over msg under pub.
func Verify(pub ed25519.PublicKey, msg, sig []byte) error {
	if len(pub) != ed25519.PublicKeySize {
		return fmt.Errorf("sig: bad public key size %d", len(pub))
	}
	if !ed25519.Verify(pub, msg, sig) {
		return ErrBadSignature
	}
	return nil
}
