package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; embed by value and update with atomic cost only.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value. All methods are safe on a
// nil receiver (no-ops), so hot paths update an optional gauge with one
// branch and no allocation.
//
//lofat:nilsafe
type Gauge struct{ v atomic.Int64 }

// Set stores v.
//
//lofat:zeroalloc
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (negative to decrement).
//
//lofat:zeroalloc
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Load returns the current value (0 on a nil gauge).
//
//lofat:zeroalloc
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Kind is the exposition type of a registered metric.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// metric is one registered instrument: a family name, an optional
// pre-rendered label set (`class="accepted"`), and exactly one backing
// primitive.
type metric struct {
	name   string
	labels string
	help   string
	kind   Kind

	counter *Counter
	gauge   *Gauge
	gaugeFn func() int64
	hist    *Histogram
}

// Registry is an ordered set of named metrics with a consistent
// snapshot API. Registration is cheap and happens at wiring time; reads
// (Snapshot, exposition) take the registry lock only to copy the metric
// list, never while loading values.
type Registry struct {
	mu sync.Mutex
	//lofat:guardedby mu
	metrics []*metric
	//lofat:guardedby mu
	index map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*metric)}
}

// register adds m, replacing any earlier metric with the same
// (name, labels) identity so re-wiring is idempotent.
func (r *Registry) register(m *metric) {
	key := m.name + "\x00" + m.labels
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.index[key]; ok {
		*old = *m
		return
	}
	r.index[key] = m
	r.metrics = append(r.metrics, m)
}

// RegisterCounter exposes an externally-owned counter under name.
// labels is a pre-rendered Prometheus label set without braces (for
// example `class="accepted"`), or empty.
func (r *Registry) RegisterCounter(name, labels, help string, c *Counter) {
	r.register(&metric{name: name, labels: labels, help: help, kind: KindCounter, counter: c})
}

// RegisterGauge exposes an externally-owned gauge under name.
func (r *Registry) RegisterGauge(name, labels, help string, g *Gauge) {
	r.register(&metric{name: name, labels: labels, help: help, kind: KindGauge, gauge: g})
}

// RegisterGaugeFunc exposes a computed gauge: fn is evaluated at every
// snapshot, so it must be safe for concurrent use and must not call
// back into the registry.
func (r *Registry) RegisterGaugeFunc(name, labels, help string, fn func() int64) {
	r.register(&metric{name: name, labels: labels, help: help, kind: KindGauge, gaugeFn: fn})
}

// RegisterHistogram exposes an externally-owned histogram under name.
func (r *Registry) RegisterHistogram(name, labels, help string, h *Histogram) {
	r.register(&metric{name: name, labels: labels, help: help, kind: KindHistogram, hist: h})
}

// Counter registers (or returns the already-registered) counter for
// (name, labels).
func (r *Registry) Counter(name, labels, help string) *Counter {
	key := name + "\x00" + labels
	r.mu.Lock()
	if m, ok := r.index[key]; ok && m.counter != nil {
		r.mu.Unlock()
		return m.counter
	}
	r.mu.Unlock()
	c := &Counter{}
	r.RegisterCounter(name, labels, help, c)
	return c
}

// Gauge registers (or returns the already-registered) gauge.
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	key := name + "\x00" + labels
	r.mu.Lock()
	if m, ok := r.index[key]; ok && m.gauge != nil {
		r.mu.Unlock()
		return m.gauge
	}
	r.mu.Unlock()
	g := &Gauge{}
	r.RegisterGauge(name, labels, help, g)
	return g
}

// Histogram registers (or returns the already-registered) histogram.
func (r *Registry) Histogram(name, labels, help string) *Histogram {
	key := name + "\x00" + labels
	r.mu.Lock()
	if m, ok := r.index[key]; ok && m.hist != nil {
		r.mu.Unlock()
		return m.hist
	}
	r.mu.Unlock()
	h := &Histogram{}
	r.RegisterHistogram(name, labels, help, h)
	return h
}

// MetricSnapshot is the point-in-time value of one registered metric.
// Value carries counter and gauge readings; Hist carries histogram
// state (nil otherwise).
type MetricSnapshot struct {
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	Kind   string `json:"kind"`
	Help   string `json:"help,omitempty"`

	Value float64       `json:"value"`
	Hist  *HistSnapshot `json:"histogram,omitempty"`
}

// Snapshot captures every registered metric in registration order.
// Counters and histograms are loaded atomically per field; gauge
// functions are evaluated inline.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()

	out := make([]MetricSnapshot, 0, len(metrics))
	for _, m := range metrics {
		ms := MetricSnapshot{Name: m.name, Labels: m.labels, Kind: m.kind.String(), Help: m.help}
		switch {
		case m.counter != nil:
			ms.Value = float64(m.counter.Load())
		case m.gauge != nil:
			ms.Value = float64(m.gauge.Load())
		case m.gaugeFn != nil:
			ms.Value = float64(m.gaugeFn())
		case m.hist != nil:
			h := m.hist.Snapshot()
			ms.Hist = &h
		}
		out = append(out, ms)
	}
	return out
}
