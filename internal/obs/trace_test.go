package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	PID  int               `json:"pid"`
	TID  int64             `json:"tid"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Args map[string]string `json:"args"`
}

func TestTracerEmitsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	sc := Scope{T: tr, TID: tr.NextTID()}

	outer := sc.Start("sweep", "fleet").Arg("program", "abc123")
	inner := sc.Start("round", "fleet").Arg("device", "dev-001").Arg("outcome", "accepted")
	time.Sleep(time.Millisecond)
	inner.End()
	outer.End()

	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	var events []traceEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	// End order: inner emitted first.
	if events[0].Name != "round" || events[1].Name != "sweep" {
		t.Fatalf("unexpected event names: %s, %s", events[0].Name, events[1].Name)
	}
	for _, e := range events {
		if e.Ph != "X" {
			t.Errorf("event %s ph = %q, want X", e.Name, e.Ph)
		}
		if e.PID != 1 || e.TID != 1 {
			t.Errorf("event %s pid/tid = %d/%d", e.Name, e.PID, e.TID)
		}
	}
	if events[0].Args["device"] != "dev-001" || events[0].Args["outcome"] != "accepted" {
		t.Errorf("round args = %v", events[0].Args)
	}
	if events[1].Args["program"] != "abc123" {
		t.Errorf("sweep args = %v", events[1].Args)
	}
	// Nesting by time containment: round inside sweep.
	round, sweep := events[0], events[1]
	if round.TS < sweep.TS || round.TS+round.Dur > sweep.TS+sweep.Dur+0.001 {
		t.Errorf("round [%v, %v] not contained in sweep [%v, %v]",
			round.TS, round.TS+round.Dur, sweep.TS, sweep.TS+sweep.Dur)
	}
	if tr.Events() != 2 {
		t.Errorf("Events() = %d, want 2", tr.Events())
	}
}

func TestTracerEmptyCloseIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	var events []traceEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("empty trace not valid JSON: %v", err)
	}
	if len(events) != 0 {
		t.Fatalf("events = %d, want 0", len(events))
	}
}

func TestTracerEscaping(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	sc := Scope{T: tr, TID: tr.NextTID()}
	sc.Start(`na"me\with`, "c").Arg("k", "line\nbreak\ttab\x01ctl").End()
	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	var events []traceEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("escaped output invalid: %v\n%s", err, buf.String())
	}
	if events[0].Name != `na"me\with` {
		t.Errorf("name round-trip failed: %q", events[0].Name)
	}
	if events[0].Args["k"] != "line\nbreak\ttab\x01ctl" {
		t.Errorf("arg round-trip failed: %q", events[0].Args["k"])
	}
}

func TestTracerStartAt(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	sc := Scope{T: tr, TID: tr.NextTID()}
	// Backdate before the tracer base: clamps to 0 rather than going
	// negative.
	sc.StartAt("wait", "fleet", time.Now().Add(-time.Hour)).End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var events []traceEvent
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	if events[0].TS != 0 {
		t.Errorf("backdated ts = %v, want 0", events[0].TS)
	}
	if events[0].Dur <= 0 {
		t.Errorf("backdated dur = %v, want > 0", events[0].Dur)
	}
}

func TestDisabledScopeZeroAlloc(t *testing.T) {
	var sc Scope // zero scope: disabled
	allocs := testing.AllocsPerRun(100, func() {
		sp := sc.Start("round", "fleet").Arg("device", "d").Arg("outcome", "ok")
		sp.End()
		sc.StartAt("wait", "fleet", time.Time{}).End()
	})
	if allocs != 0 {
		t.Fatalf("disabled scope allocates: %v allocs/op", allocs)
	}
	if sc.Enabled() {
		t.Fatal("zero scope reports enabled")
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.NextTID() != 0 {
		t.Error("nil NextTID != 0")
	}
	if tr.Events() != 0 {
		t.Error("nil Events != 0")
	}
	if err := tr.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}

func TestTIDAllocation(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	a, b := tr.NextTID(), tr.NextTID()
	if a == b {
		t.Fatalf("NextTID not unique: %d == %d", a, b)
	}
	tr.Close()
	if !strings.HasPrefix(buf.String(), "[]") {
		t.Fatalf("unexpected empty-trace output: %q", buf.String())
	}
}
