// Package obs is the shared observability layer for the LO-FAT verify
// path: metrics, tracing and a flight recorder, designed so that the
// instrumented hot paths (fleet pipeline, stream sessions, hash engine)
// pay nothing when observability is disabled.
//
// Three independent facilities, bundled by Hub:
//
//   - Metrics: Counter / Gauge / Histogram primitives behind a Registry
//     with a point-in-time Snapshot API and HTTP exposition in both
//     Prometheus text format and JSON (plus optional pprof handlers).
//     Histograms are log2-bucketed — cheap enough to record every round
//     latency and per-segment verify time with a handful of atomic adds.
//   - Tracing: lightweight spans with monotonic timestamps, exported as
//     Chrome trace-event JSON (one event per line, array-framed) that
//     loads directly in Perfetto / chrome://tracing. A nil Tracer (the
//     default) makes every span operation a no-op with zero
//     allocations: Scope and Span are plain values, never heap-bound.
//   - Flight recorder: a bounded ring of recent per-device events
//     (verdicts, transport-error classes, retries, breaker state
//     transitions, quarantines) that turns a failed chaos sweep into a
//     post-mortem artifact instead of a rerun-with-printfs session.
//
// Every facility is nil-safe: methods on nil *Gauge, *Histogram,
// *Tracer and *Flight receivers return immediately, so instrumented
// code calls them unconditionally and the disabled configuration costs
// one predictable branch.
package obs

// Hub bundles the three observability facilities one process shares.
// The zero value is fully disabled; NewHub returns a hub with a live
// metrics registry and tracing/flight still off (nil).
type Hub struct {
	// Reg is the metrics registry exposed over HTTP. Nil disables
	// metric registration (instrumented code still updates its own
	// counters; they are just not exported).
	Reg *Registry
	// Tracer, when non-nil, receives spans from every instrumented
	// layer (fleet sweeps, rounds, attest exchange/verify phases,
	// stream segments).
	Tracer *Tracer
	// Flight, when non-nil, records per-device events into a bounded
	// ring for post-mortem dumps.
	Flight *Flight
}

// NewHub returns a hub with a fresh metrics registry and tracing /
// flight recording disabled.
func NewHub() *Hub { return &Hub{Reg: NewRegistry()} }
