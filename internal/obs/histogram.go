package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// maxBucketBits is the highest regular log2 bucket: values whose bit
// length exceeds it land in a single overflow bucket. 40 bits covers
// nanosecond latencies up to ~18 minutes — everything slower is, for
// latency purposes, the same disaster.
const maxBucketBits = 40

// numBuckets is the bucket array size: indices 0..maxBucketBits are the
// regular buckets (bucket i holds values of bit length i, so its
// inclusive upper edge is 2^i - 1; bucket 0 holds exactly 0), and index
// maxBucketBits+1 is the overflow bucket.
const numBuckets = maxBucketBits + 2

// Histogram is a log2-bucketed distribution of uint64 samples
// (typically latencies in nanoseconds). Observe is a few uncontended
// atomic adds, cheap enough for per-round and per-segment recording;
// all methods are safe on a nil receiver so optional histograms cost
// one branch when disabled. Count, sum and buckets are independent
// atomics: a concurrent Snapshot may be off by in-flight samples but is
// always race-free.
//
//lofat:nilsafe
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [numBuckets]atomic.Uint64
}

// bucketIdx maps a sample to its bucket: bits.Len64 clamps into the
// overflow bucket past maxBucketBits.
//
//lofat:zeroalloc
func bucketIdx(v uint64) int {
	if i := bits.Len64(v); i <= maxBucketBits {
		return i
	}
	return maxBucketBits + 1
}

// BucketUpperEdge returns the inclusive upper edge of bucket i
// (math.MaxUint64 for the overflow bucket). Exported for exposition and
// tests.
func BucketUpperEdge(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i > maxBucketBits {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// Observe records one sample.
//
//lofat:zeroalloc
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIdx(v)].Add(1)
}

// ObserveSince records the nanoseconds elapsed since start.
//
//lofat:zeroalloc
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(uint64(time.Since(start)))
}

// Count returns the number of recorded samples.
//
//lofat:zeroalloc
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistBucket is one non-empty bucket in a snapshot. Le is the inclusive
// upper edge (math.MaxUint64 marks the overflow bucket); Count is the
// samples in this bucket alone, not cumulative.
type HistBucket struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// HistSnapshot is a point-in-time copy of a histogram: total count and
// sum plus the non-empty buckets in ascending edge order.
type HistSnapshot struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram state (zero value on a nil receiver).
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	// Buckets are read before count: Observe increments count first, so
	// every bucket increment the loop sees has its count increment
	// visible to the later load. The bucket total may trail Count by
	// in-flight samples but can never exceed it. (The reverse order
	// would let observes landing between the two reads push the bucket
	// sum arbitrarily past the snapshot count.)
	var s HistSnapshot
	for i := 0; i < numBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, HistBucket{Le: BucketUpperEdge(i), Count: n})
		}
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// Mean returns the arithmetic mean of the recorded samples (0 when
// empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation inside the target bucket. Log2 buckets make this an
// order-of-magnitude instrument, not a precision one: the estimate is
// within the bucket holding the true quantile. Returns 0 for an empty
// snapshot; for a quantile landing in the overflow bucket the bucket's
// lower edge is returned (the distribution's tail is unbounded).
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for _, b := range s.Buckets {
		next := cum + float64(b.Count)
		if rank <= next {
			if b.Le == math.MaxUint64 {
				// Overflow bucket: no finite upper edge, return its
				// lower edge.
				return float64(BucketUpperEdge(maxBucketBits))
			}
			// True lower edge of the log2 bucket ending at Le = 2^i - 1
			// is 2^(i-1) - 1.
			lower := 0.0
			if b.Le > 0 {
				lower = float64((b.Le+1)/2 - 1)
			}
			frac := (rank - cum) / float64(b.Count)
			return lower + frac*(float64(b.Le)-lower)
		}
		cum = next
	}
	if n := len(s.Buckets); n > 0 && s.Buckets[n-1].Le != math.MaxUint64 {
		return float64(s.Buckets[n-1].Le)
	}
	return float64(BucketUpperEdge(maxBucketBits))
}
