package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func buildTestRegistry() *Registry {
	r := NewRegistry()
	c := r.Counter("lofat_test_rounds_total", "", "Rounds completed.")
	c.Add(42)
	ca := r.Counter("lofat_test_class_total", `class="accepted"`, "Verdicts by class.")
	ca.Add(40)
	cr := r.Counter("lofat_test_class_total", `class="rejected"`, "Verdicts by class.")
	cr.Add(2)
	g := r.Gauge("lofat_test_depth", "", "Queue depth.")
	g.Set(-3)
	h := r.Histogram("lofat_test_latency_ns", "", "Round latency.")
	h.Observe(100)
	h.Observe(1000)
	h.Observe(1 << 50) // overflow
	return r
}

func TestWritePrometheus(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, buildTestRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# HELP lofat_test_rounds_total Rounds completed.",
		"# TYPE lofat_test_rounds_total counter",
		"lofat_test_rounds_total 42",
		`lofat_test_class_total{class="accepted"} 40`,
		`lofat_test_class_total{class="rejected"} 2`,
		"# TYPE lofat_test_depth gauge",
		"lofat_test_depth -3",
		"# TYPE lofat_test_latency_ns histogram",
		`lofat_test_latency_ns_bucket{le="127"} 1`,
		`lofat_test_latency_ns_bucket{le="1023"} 2`,
		`lofat_test_latency_ns_bucket{le="+Inf"} 3`,
		"lofat_test_latency_ns_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// The class family header appears once, not per label set.
	if n := strings.Count(out, "# TYPE lofat_test_class_total counter"); n != 1 {
		t.Errorf("family TYPE header count = %d, want 1", n)
	}
	// Exactly one +Inf line even with a populated overflow bucket.
	if n := strings.Count(out, `le="+Inf"`); n != 1 {
		t.Errorf("+Inf lines = %d, want 1\n%s", n, out)
	}
	// Cumulative le buckets never decrease.
	var last int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "lofat_test_latency_ns_bucket") {
			continue
		}
		var v int64
		if _, err := fmtSscanLast(line, &v); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < last {
			t.Errorf("bucket counts not cumulative: %q after %d", line, last)
		}
		last = v
	}
}

// fmtSscanLast parses the final whitespace-separated field as int64.
func fmtSscanLast(line string, v *int64) (int, error) {
	fields := strings.Fields(line)
	return 1, json.Unmarshal([]byte(fields[len(fields)-1]), v)
}

func TestWriteJSONSnapshot(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, buildTestRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []MetricSnapshot `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.Metrics) != 5 {
		t.Fatalf("metrics = %d, want 5", len(doc.Metrics))
	}
	var hist *MetricSnapshot
	for i := range doc.Metrics {
		if doc.Metrics[i].Kind == "histogram" {
			hist = &doc.Metrics[i]
		}
	}
	if hist == nil || hist.Hist == nil || hist.Hist.Count != 3 {
		t.Fatalf("histogram snapshot missing or wrong: %+v", hist)
	}
}

func TestHubHandler(t *testing.T) {
	hub := NewHub()
	hub.Reg = buildTestRegistry()
	hub.Flight = NewFlight(8)
	hub.Flight.Record(Event{Device: "dev-9", Kind: KindQuarantine})
	srv := httptest.NewServer(hub.Handler(true))
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content-type = %q", ct)
	}
	if !strings.Contains(body, "lofat_test_rounds_total 42") {
		t.Errorf("/metrics body missing counter:\n%s", body)
	}

	body, ct = get("/metrics?format=json")
	if !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/metrics?format=json content-type = %q", ct)
	}
	if !json.Valid([]byte(body)) {
		t.Errorf("/metrics?format=json invalid JSON")
	}

	body, _ = get("/metrics.json")
	if !json.Valid([]byte(body)) {
		t.Errorf("/metrics.json invalid JSON")
	}

	body, _ = get("/flight")
	if !strings.Contains(body, "dev-9") || !strings.Contains(body, "quarantine") {
		t.Errorf("/flight body:\n%s", body)
	}

	body, _ = get("/flight.json")
	if !json.Valid([]byte(body)) {
		t.Errorf("/flight.json invalid JSON")
	}

	body, _ = get("/debug/pprof/cmdline")
	if body == "" {
		t.Errorf("pprof cmdline empty")
	}
}

func TestHubHandlerDisabledFacilities(t *testing.T) {
	hub := &Hub{} // no registry, no flight
	srv := httptest.NewServer(hub.Handler(false))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/flight", "/debug/pprof/"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != 404 {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}
