package obs_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"lofat/internal/obs"
)

// TestNilHandlesAreSafe is the regression suite behind the
// //lofat:nilsafe annotations: every exported method of every nil-safe
// handle type must be callable on a nil receiver — observability that
// is wired but disabled costs a nil check, never a panic. The obsnil
// analyzer enforces the guard's presence statically; this test proves
// each guard's behavior.
func TestNilHandlesAreSafe(t *testing.T) {
	var g *obs.Gauge
	g.Set(5)
	g.Add(-3)
	if v := g.Load(); v != 0 {
		t.Errorf("nil Gauge.Load = %d, want 0", v)
	}

	var h *obs.Histogram
	h.Observe(10)
	h.ObserveSince(time.Now())
	if c := h.Count(); c != 0 {
		t.Errorf("nil Histogram.Count = %d, want 0", c)
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Errorf("nil Histogram.Snapshot.Count = %d, want 0", s.Count)
	}

	var f *obs.Flight
	if f.Enabled() {
		t.Error("nil Flight reports Enabled")
	}
	f.Record(obs.Event{Device: "pump-1", Kind: obs.KindVerdict})
	f.DropDevice("pump-1")
	if n := f.Len(); n != 0 {
		t.Errorf("nil Flight.Len = %d, want 0", n)
	}
	if evs := f.Events(); evs != nil {
		t.Errorf("nil Flight.Events = %v, want nil", evs)
	}
	if evs := f.DeviceEvents("pump-1"); evs != nil {
		t.Errorf("nil Flight.DeviceEvents = %v, want nil", evs)
	}
	var dump bytes.Buffer
	if err := f.Dump(&dump); err != nil {
		t.Errorf("nil Flight.Dump: %v", err)
	}
	if !strings.Contains(dump.String(), "disabled") {
		t.Errorf("nil Flight.Dump wrote %q, want a disabled notice", dump.String())
	}
	var js bytes.Buffer
	if err := f.WriteJSON(&js); err != nil {
		t.Errorf("nil Flight.WriteJSON: %v", err)
	}
	if got := js.String(); got != "[]\n" {
		t.Errorf("nil Flight.WriteJSON wrote %q, want %q", got, "[]\n")
	}

	var tr *obs.Tracer
	if id := tr.NextTID(); id != 0 {
		t.Errorf("nil Tracer.NextTID = %d, want 0", id)
	}
	if n := tr.Events(); n != 0 {
		t.Errorf("nil Tracer.Events = %d, want 0", n)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("nil Tracer.Close: %v", err)
	}

	// The value-typed wrappers built on nil handles must be inert too.
	sc := obs.Scope{}
	if sc.Enabled() {
		t.Error("zero Scope reports Enabled")
	}
	sp := sc.Start("round", "attest")
	sp.Arg("k", "v").End()
}
