package obs

import (
	"sync"
	"testing"
)

func TestRegistryOrderAndIdempotence(t *testing.T) {
	r := NewRegistry()
	var a, b Counter
	r.RegisterCounter("m_a", "", "first", &a)
	r.RegisterCounter("m_b", `class="x"`, "second", &b)
	r.RegisterCounter("m_a", "", "first again", &a) // same identity: replace in place

	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot len = %d, want 2", len(snap))
	}
	if snap[0].Name != "m_a" || snap[1].Name != "m_b" {
		t.Fatalf("registration order not preserved: %s, %s", snap[0].Name, snap[1].Name)
	}
	if snap[0].Help != "first again" {
		t.Fatalf("re-registration did not replace help: %q", snap[0].Help)
	}
	if snap[1].Labels != `class="x"` {
		t.Fatalf("labels lost: %q", snap[1].Labels)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("hits", "", "")
	c1.Inc()
	c2 := r.Counter("hits", "", "")
	if c1 != c2 {
		t.Fatalf("Counter() returned distinct instances for same identity")
	}
	if c2.Load() != 1 {
		t.Fatalf("count = %d, want 1", c2.Load())
	}
	g1 := r.Gauge("depth", "", "")
	g1.Set(7)
	if r.Gauge("depth", "", "").Load() != 7 {
		t.Fatalf("gauge identity not shared")
	}
	h1 := r.Histogram("lat", "", "")
	h1.Observe(3)
	if r.Histogram("lat", "", "").Count() != 1 {
		t.Fatalf("histogram identity not shared")
	}
}

func TestRegistryGaugeFunc(t *testing.T) {
	r := NewRegistry()
	n := int64(41)
	r.RegisterGaugeFunc("fn_gauge", "", "", func() int64 { return n + 1 })
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Value != 42 {
		t.Fatalf("gauge func snapshot = %+v", snap)
	}
}

// TestRegistryConcurrentWritesVsSnapshot hammers counters, gauges, and
// histograms from many goroutines while snapshots run concurrently.
// Correctness here is "no race, no panic, snapshots internally sane" —
// run under -race.
func TestRegistryConcurrentWritesVsSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "", "")
	g := r.Gauge("g_now", "", "")
	h := r.Histogram("h_ns", "", "")

	const writers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(seed*1000 + uint64(i))
				// Interleave late registrations with snapshots.
				if i%500 == 0 {
					r.Counter("late", "", "").Inc()
				}
			}
		}(uint64(w))
	}
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, m := range r.Snapshot() {
				if m.Hist != nil {
					var n uint64
					for _, b := range m.Hist.Buckets {
						n += b.Count
					}
					// Bucket totals may trail Count by in-flight samples
					// but can never exceed it: Snapshot reads buckets
					// before count, and Observe increments count first.
					if n > m.Hist.Count {
						panic("bucket sum exceeds count")
					}
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	snapWG.Wait()

	if got := c.Load(); got != writers*iters {
		t.Fatalf("counter = %d, want %d", got, writers*iters)
	}
	if got := h.Count(); got != writers*iters {
		t.Fatalf("histogram count = %d, want %d", got, writers*iters)
	}
	if got := g.Load(); got != writers*iters {
		t.Fatalf("gauge = %d, want %d", got, writers*iters)
	}
}

func TestNilGauge(t *testing.T) {
	var g *Gauge
	g.Set(1)
	g.Add(2)
	if g.Load() != 0 {
		t.Fatalf("nil gauge load != 0")
	}
}
