package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestFlightRingWraparound(t *testing.T) {
	f := NewFlight(4)
	for i := 0; i < 6; i++ {
		f.Record(Event{Device: string(rune('a' + i)), Kind: KindVerdict})
	}
	if f.Len() != 4 {
		t.Fatalf("len = %d, want 4", f.Len())
	}
	events := f.Events()
	// Oldest retained is #3 ("c"); newest is #6 ("f").
	want := []string{"c", "d", "e", "f"}
	for i, e := range events {
		if e.Device != want[i] {
			t.Fatalf("events[%d].Device = %q, want %q (order after wrap)", i, e.Device, want[i])
		}
		if e.Seq != uint64(i+3) {
			t.Fatalf("events[%d].Seq = %d, want %d", i, e.Seq, i+3)
		}
	}
}

func TestFlightDeviceEvents(t *testing.T) {
	f := NewFlight(16)
	f.Record(Event{Device: "dev-1", Kind: KindVerdict, Class: "accepted"})
	f.Record(Event{Device: "dev-2", Kind: KindTransportError, Class: "timeout"})
	f.Record(Event{Device: "dev-1", Kind: KindQuarantine})
	got := f.DeviceEvents("dev-1")
	if len(got) != 2 {
		t.Fatalf("dev-1 events = %d, want 2", len(got))
	}
	if got[0].Kind != KindVerdict || got[1].Kind != KindQuarantine {
		t.Fatalf("wrong kinds: %v, %v", got[0].Kind, got[1].Kind)
	}
}

func TestFlightDump(t *testing.T) {
	f := NewFlight(8)
	f.Record(Event{Device: "dev-7", Kind: KindBreakerTrip, Detail: "5 consecutive transport failures", Sweep: 3})
	var buf bytes.Buffer
	if err := f.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"1 event(s)", "dev-7", "breaker-trip", "sweep=3", "5 consecutive transport failures"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}

	var empty bytes.Buffer
	if err := NewFlight(2).Dump(&empty); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "no events") {
		t.Errorf("empty dump: %q", empty.String())
	}
}

func TestFlightWriteJSON(t *testing.T) {
	f := NewFlight(8)
	f.Record(Event{Device: "dev-1", Kind: KindTransportError, Class: "conn-drop", Detail: "read: EOF"})
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(out) != 1 {
		t.Fatalf("events = %d, want 1", len(out))
	}
	if out[0]["kind"] != "transport-error" {
		t.Errorf("kind = %v, want transport-error (MarshalText)", out[0]["kind"])
	}
	if out[0]["class"] != "conn-drop" {
		t.Errorf("class = %v", out[0]["class"])
	}

	// Empty recorder still writes a valid (empty) array.
	var ebuf bytes.Buffer
	if err := NewFlight(2).WriteJSON(&ebuf); err != nil {
		t.Fatal(err)
	}
	var eout []map[string]any
	if err := json.Unmarshal(ebuf.Bytes(), &eout); err != nil {
		t.Fatalf("empty JSON invalid: %v", err)
	}
}

func TestNilFlight(t *testing.T) {
	var f *Flight
	if f.Enabled() {
		t.Error("nil flight enabled")
	}
	f.Record(Event{Device: "x"}) // must not panic
	if f.Len() != 0 {
		t.Error("nil len != 0")
	}
	if f.Events() != nil {
		t.Error("nil events != nil")
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := map[EventKind]string{
		KindVerdict:        "verdict",
		KindTransportError: "transport-error",
		KindRetry:          "retry",
		KindBreakerTrip:    "breaker-trip",
		KindBreakerProbe:   "breaker-probe",
		KindBreakerReset:   "breaker-reset",
		KindQuarantine:     "quarantine",
		KindEarlyAbort:     "early-abort",
		KindSweepFail:      "sweep-fail",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestFlightDropDevice(t *testing.T) {
	f := NewFlight(8)
	f.Record(Event{Device: "keep-1", Kind: KindVerdict})
	f.Record(Event{Device: "drop", Kind: KindTransportError})
	f.Record(Event{Device: "keep-2", Kind: KindQuarantine})
	f.Record(Event{Device: "drop", Kind: KindBreakerTrip})

	f.DropDevice("drop")
	events := f.Events()
	if len(events) != 2 {
		t.Fatalf("len = %d after drop, want 2", len(events))
	}
	// Survivors keep their order and original sequence numbers.
	if events[0].Device != "keep-1" || events[0].Seq != 1 {
		t.Fatalf("events[0] = %+v", events[0])
	}
	if events[1].Device != "keep-2" || events[1].Seq != 3 {
		t.Fatalf("events[1] = %+v", events[1])
	}
	if got := f.DeviceEvents("drop"); len(got) != 0 {
		t.Fatalf("dropped device still has %d events", len(got))
	}

	// New events continue the sequence; nothing is rewound.
	f.Record(Event{Device: "keep-3", Kind: KindVerdict})
	events = f.Events()
	if last := events[len(events)-1]; last.Seq != 5 {
		t.Fatalf("seq after drop = %d, want 5 (counter must not rewind)", last.Seq)
	}

	// Dropping across a wrapped ring keeps the retained window coherent.
	w := NewFlight(4)
	for i := 0; i < 6; i++ {
		dev := "even"
		if i%2 == 1 {
			dev = "odd"
		}
		w.Record(Event{Device: dev, Kind: KindVerdict})
	}
	w.DropDevice("odd")
	got := w.Events()
	if len(got) != 2 || got[0].Device != "even" || got[1].Device != "even" {
		t.Fatalf("wrapped drop: %+v", got)
	}
	if got[0].Seq != 3 || got[1].Seq != 5 {
		t.Fatalf("wrapped drop seqs: %d, %d", got[0].Seq, got[1].Seq)
	}

	// Nil and absent-device drops are no-ops.
	var nilf *Flight
	nilf.DropDevice("x")
	before := f.Len()
	f.DropDevice("absent")
	if f.Len() != before {
		t.Fatalf("absent drop changed len %d → %d", before, f.Len())
	}
}
