package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
)

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4). Metrics sharing a family name get
// one HELP/TYPE header; histograms expand into cumulative _bucket
// series plus _sum and _count.
func WritePrometheus(w io.Writer, snap []MetricSnapshot) error {
	lastFamily := ""
	for _, m := range snap {
		if m.Name != lastFamily {
			if m.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, strings.ReplaceAll(m.Help, "\n", " ")); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind); err != nil {
				return err
			}
			lastFamily = m.Name
		}
		if m.Hist != nil {
			if err := writePromHistogram(w, m); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", seriesName(m.Name, m.Labels), formatValue(m.Value)); err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, m MetricSnapshot) error {
	var cum uint64
	for _, b := range m.Hist.Buckets {
		cum += b.Count
		if b.Le == math.MaxUint64 {
			// Overflow bucket: covered by the +Inf line below.
			continue
		}
		labels := m.Labels
		if labels != "" {
			labels += ","
		}
		labels += `le="` + strconv.FormatUint(b.Le, 10) + `"`
		if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(m.Name+"_bucket", labels), cum); err != nil {
			return err
		}
	}
	labels := m.Labels
	infLabels := labels
	if infLabels != "" {
		infLabels += ","
	}
	infLabels += `le="+Inf"`
	if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(m.Name+"_bucket", infLabels), m.Hist.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(m.Name+"_sum", labels), m.Hist.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", seriesName(m.Name+"_count", labels), m.Hist.Count)
	return err
}

func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// formatValue renders counters and gauges: integral values without a
// fraction, everything else in shortest-round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON renders a metrics snapshot as a JSON document.
func WriteJSON(w io.Writer, snap []MetricSnapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Metrics []MetricSnapshot `json:"metrics"`
	}{Metrics: snap})
}

// Handler returns the hub's HTTP surface:
//
//	/metrics        Prometheus text format (?format=json for JSON)
//	/metrics.json   JSON snapshot
//	/flight         flight-recorder dump, text (?format=json for JSON)
//	/flight.json    flight-recorder dump, JSON
//	/debug/pprof/*  pprof handlers (when withPprof is true)
//
// The handler is safe with any subset of facilities disabled: missing
// ones answer 404.
func (h *Hub) Handler(withPprof bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if h.Reg == nil {
			http.Error(w, "metrics registry disabled", http.StatusNotFound)
			return
		}
		snap := h.Reg.Snapshot()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = WriteJSON(w, snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, snap)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		if h.Reg == nil {
			http.Error(w, "metrics registry disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = WriteJSON(w, h.Reg.Snapshot())
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, r *http.Request) {
		if h.Flight == nil {
			http.Error(w, "flight recorder disabled", http.StatusNotFound)
			return
		}
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = h.Flight.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = h.Flight.Dump(w)
	})
	mux.HandleFunc("/flight.json", func(w http.ResponseWriter, r *http.Request) {
		if h.Flight == nil {
			http.Error(w, "flight recorder disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = h.Flight.WriteJSON(w)
	})
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}
