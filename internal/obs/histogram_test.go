package obs

import (
	"math"
	"testing"
	"time"
)

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{(1 << 10) - 1, 10},
		{1 << 10, 11},
		{(1 << 40) - 1, 40},
		{1 << 40, 41},        // first overflow value
		{math.MaxUint64, 41}, // max lands in overflow too
	}
	for _, c := range cases {
		if got := bucketIdx(c.v); got != c.want {
			t.Errorf("bucketIdx(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestBucketUpperEdge(t *testing.T) {
	if got := BucketUpperEdge(0); got != 0 {
		t.Errorf("edge(0) = %d, want 0", got)
	}
	if got := BucketUpperEdge(1); got != 1 {
		t.Errorf("edge(1) = %d, want 1", got)
	}
	if got := BucketUpperEdge(10); got != (1<<10)-1 {
		t.Errorf("edge(10) = %d, want %d", got, (1<<10)-1)
	}
	if got := BucketUpperEdge(maxBucketBits); got != (1<<40)-1 {
		t.Errorf("edge(max) = %d, want %d", got, uint64(1<<40)-1)
	}
	if got := BucketUpperEdge(maxBucketBits + 1); got != math.MaxUint64 {
		t.Errorf("edge(overflow) = %d, want MaxUint64", got)
	}
	// Every sample must fall at or below its bucket's upper edge and
	// above the previous bucket's edge.
	for _, v := range []uint64{0, 1, 2, 3, 7, 8, 1023, 1024, 1 << 39, (1 << 40) - 1} {
		i := bucketIdx(v)
		if v > BucketUpperEdge(i) {
			t.Errorf("value %d above edge of its bucket %d", v, i)
		}
		if i > 0 && v <= BucketUpperEdge(i-1) {
			t.Errorf("value %d not above edge of bucket %d", v, i-1)
		}
	}
}

func TestHistogramZeroMaxOverflow(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(math.MaxUint64)
	h.Observe(1 << 40) // overflow
	h.Observe(5)

	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	var wantSum uint64 // wraps; sum is modular
	for _, v := range []uint64{0, math.MaxUint64, 1 << 40, 5} {
		wantSum += v
	}
	if s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
	var zero, overflow, mid uint64
	for _, b := range s.Buckets {
		switch {
		case b.Le == 0:
			zero = b.Count
		case b.Le == math.MaxUint64:
			overflow = b.Count
		case b.Le == 7:
			mid = b.Count
		}
	}
	if zero != 1 {
		t.Errorf("zero bucket count = %d, want 1", zero)
	}
	if overflow != 2 {
		t.Errorf("overflow bucket count = %d, want 2 (MaxUint64 and 1<<40)", overflow)
	}
	if mid != 1 {
		t.Errorf("bucket le=7 count = %d, want 1", mid)
	}
}

func TestHistogramSnapshotAscending(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{1, 100, 10000, 1 << 41, 0} {
		h.Observe(v)
	}
	s := h.Snapshot()
	for i := 1; i < len(s.Buckets); i++ {
		if s.Buckets[i].Le <= s.Buckets[i-1].Le {
			t.Fatalf("buckets not ascending: %v", s.Buckets)
		}
	}
}

func TestQuantile(t *testing.T) {
	var h Histogram
	// 100 samples all in bucket (512, 1023].
	for i := 0; i < 100; i++ {
		h.Observe(600)
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.5)
	if p50 <= 511 || p50 > 1023 {
		t.Errorf("p50 = %v, want within (511, 1023]", p50)
	}
	// Monotone in q.
	if s.Quantile(0.99) < s.Quantile(0.5) {
		t.Errorf("quantile not monotone")
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty HistSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	if got := empty.Mean(); got != 0 {
		t.Errorf("empty mean = %v, want 0", got)
	}

	var h Histogram
	h.Observe(1 << 50) // everything in overflow
	s := h.Snapshot()
	got := s.Quantile(0.5)
	want := float64(uint64(1<<40) - 1) // overflow lower edge
	if got != want {
		t.Errorf("overflow quantile = %v, want %v", got, want)
	}

	// Out-of-range q values clamp rather than panic.
	h2 := Histogram{}
	h2.Observe(10)
	s2 := h2.Snapshot()
	if s2.Quantile(-1) < 0 {
		t.Errorf("q=-1 returned negative")
	}
	_ = s2.Quantile(2)
}

func TestHistogramMean(t *testing.T) {
	var h Histogram
	h.Observe(10)
	h.Observe(20)
	h.Observe(30)
	if got := h.Snapshot().Mean(); got != 20 {
		t.Errorf("mean = %v, want 20", got)
	}
}

func TestNilHistogram(t *testing.T) {
	var h *Histogram
	h.Observe(1) // must not panic
	h.ObserveSince(time.Now())
	if h.Count() != 0 {
		t.Errorf("nil histogram count != 0")
	}
	s := h.Snapshot()
	if s.Count != 0 || len(s.Buckets) != 0 {
		t.Errorf("nil histogram snapshot not empty: %+v", s)
	}
}
