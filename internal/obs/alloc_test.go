// Package obs_test holds the cross-package zero-allocation regression
// tests for the observability layer: with every obs facility in its
// disabled state (zero Scope, nil gauge, nil histogram, nil flight),
// the measurement hot paths must allocate exactly what they did before
// the layer existed — nothing.
package obs_test

import (
	"testing"

	"lofat/internal/filter"
	"lofat/internal/hashengine"
	"lofat/internal/monitor"
	"lofat/internal/obs"
)

// TestDisabledObsAddsNoAllocsToEngine pins hashengine.Enqueue/Tick at
// zero allocations with no gauge attached (the default state after the
// obs wiring landed).
func TestDisabledObsAddsNoAllocsToEngine(t *testing.T) {
	e := hashengine.New(hashengine.Config{})
	i := uint32(0)
	op := func() {
		for !e.Enqueue(hashengine.Pair{Src: i, Dest: i * 7}) {
			e.Tick()
		}
		i++
		e.Tick()
	}
	op()
	if allocs := testing.AllocsPerRun(1000, op); allocs != 0 {
		t.Fatalf("Enqueue/Tick without gauge: %v allocs/op, want 0", allocs)
	}
}

// TestDisabledObsAddsNoAllocsToMonitor pins monitor.Apply at zero
// steady-state allocations — the same property monitor's own alloc test
// pins, re-asserted here so a future obs hook into the monitor path
// cannot regress it unnoticed.
func TestDisabledObsAddsNoAllocsToMonitor(t *testing.T) {
	m := monitor.New(monitor.Config{}, func(hashengine.Pair) {})
	m.Apply(filter.Op{Kind: filter.OpLoopPush, Entry: 0x100, Exit: 0x140})
	iter := func() {
		m.Apply(filter.Op{Kind: filter.OpLoopEvent, Sym: filter.SymCond, Taken: true,
			Pair: hashengine.Pair{Src: 0x104, Dest: 0x120}})
		m.Apply(filter.Op{Kind: filter.OpLoopEvent, Sym: filter.SymJump,
			Pair: hashengine.Pair{Src: 0x130, Dest: 0x100}})
		m.Apply(filter.Op{Kind: filter.OpIterEnd})
	}
	iter() // intern the path
	if allocs := testing.AllocsPerRun(1000, iter); allocs != 0 {
		t.Fatalf("monitor.Apply with obs package linked: %v allocs/op, want 0", allocs)
	}
}

// TestDisabledPrimitivesZeroAlloc pins the disabled obs primitives
// themselves: nil gauge/histogram updates and zero-Scope span
// lifecycles must be allocation-free, since they sit inline on hot
// paths guarded only by a branch.
func TestDisabledPrimitivesZeroAlloc(t *testing.T) {
	var g *obs.Gauge
	var h *obs.Histogram
	var f *obs.Flight
	var sc obs.Scope
	allocs := testing.AllocsPerRun(1000, func() {
		g.Set(3)
		g.Add(-1)
		h.Observe(42)
		f.Record(obs.Event{})
		sp := sc.Start("round", "fleet").Arg("device", "d")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled obs primitives: %v allocs/op, want 0", allocs)
	}
}
