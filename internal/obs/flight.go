package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// EventKind classifies a flight-recorder event.
type EventKind uint8

// Flight-recorder event kinds.
const (
	// KindVerdict: a completed verification (accepted or rejected);
	// Class carries the attest classification.
	KindVerdict EventKind = iota
	// KindTransportError: a round lost after all transport attempts;
	// Class carries the failure class (dial / timeout / conn-drop /
	// protocol / local).
	KindTransportError
	// KindRetry: an extra transport attempt beyond the first.
	KindRetry
	// KindBreakerTrip / KindBreakerProbe / KindBreakerReset: transport
	// circuit breaker state transitions.
	KindBreakerTrip
	KindBreakerProbe
	KindBreakerReset
	// KindQuarantine: the device was newly quarantined (measurement
	// verdict).
	KindQuarantine
	// KindEarlyAbort: a streamed round was rejected mid-run at a
	// divergent segment.
	KindEarlyAbort
	// KindSweepFail: a whole program sweep failed; Device carries the
	// program ID.
	KindSweepFail
	// KindNodeJoin / KindNodeLeave / KindRebalance: federation topology
	// changes; Device carries the node ID (or the moved device for a
	// rebalance, with the old→new assignment in Detail).
	KindNodeJoin
	KindNodeLeave
	KindRebalance
	// KindFailover: a mid-sweep re-issue of a device against its next
	// live replica after its acting node failed; Device carries the
	// device ID, Detail the failed→acting node hop.
	KindFailover
	// KindLameDuck: a node's persistence layer began failing and the
	// node entered read-only degraded service; Device carries the node
	// ID, Detail the store error.
	KindLameDuck
)

func (k EventKind) String() string {
	switch k {
	case KindVerdict:
		return "verdict"
	case KindTransportError:
		return "transport-error"
	case KindRetry:
		return "retry"
	case KindBreakerTrip:
		return "breaker-trip"
	case KindBreakerProbe:
		return "breaker-probe"
	case KindBreakerReset:
		return "breaker-reset"
	case KindQuarantine:
		return "quarantine"
	case KindEarlyAbort:
		return "early-abort"
	case KindSweepFail:
		return "sweep-fail"
	case KindNodeJoin:
		return "node-join"
	case KindNodeLeave:
		return "node-leave"
	case KindRebalance:
		return "rebalance"
	case KindFailover:
		return "failover"
	case KindLameDuck:
		return "lame-duck"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// MarshalText renders the kind as its name in JSON dumps.
func (k EventKind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// Event is one flight-recorder entry.
type Event struct {
	// Seq is a monotonically increasing sequence number assigned by the
	// recorder.
	Seq uint64 `json:"seq"`
	// Time is the wall-clock time of the event (stamped by Record when
	// zero).
	Time time.Time `json:"time"`
	// Device names the device the event concerns (or the program, for
	// sweep-level events).
	Device string    `json:"device"`
	Kind   EventKind `json:"kind"`
	// Class qualifies the kind: the attest classification of a verdict,
	// the transport-failure class of an error.
	Class string `json:"class,omitempty"`
	// Detail is free-form diagnostic text (error strings, findings).
	Detail string `json:"detail,omitempty"`
	// Sweep is the sweep generation the event belongs to (0 outside
	// sweeps).
	Sweep uint64 `json:"sweep,omitempty"`
}

func (e Event) String() string {
	s := fmt.Sprintf("#%d %s %s %s", e.Seq, e.Time.Format("15:04:05.000"), e.Device, e.Kind)
	if e.Sweep > 0 {
		s += fmt.Sprintf(" sweep=%d", e.Sweep)
	}
	if e.Class != "" {
		s += fmt.Sprintf(" [%s]", e.Class)
	}
	if e.Detail != "" {
		s += ": " + e.Detail
	}
	return s
}

// Flight is a bounded ring of recent events — the post-mortem record of
// what happened inside recent rounds. All methods are safe on a nil
// receiver, the disabled state; callers building event detail strings
// should still gate on Enabled so the formatting cost is not paid when
// recording is off.
//
//lofat:nilsafe
type Flight struct {
	mu sync.Mutex
	//lofat:guardedby mu
	buf []Event
	//lofat:guardedby mu
	next int
	//lofat:guardedby mu
	seq uint64
	//lofat:guardedby mu
	wrapped bool
}

// DefaultFlightCapacity is the ring size NewFlight uses for
// non-positive capacities.
const DefaultFlightCapacity = 1024

// NewFlight returns a recorder retaining the last capacity events
// (DefaultFlightCapacity when capacity <= 0).
func NewFlight(capacity int) *Flight {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &Flight{buf: make([]Event, capacity)}
}

// Enabled reports whether recording is active.
func (f *Flight) Enabled() bool { return f != nil }

// Record appends one event, evicting the oldest when full. A zero
// Time is stamped with the current wall clock; Seq is always assigned
// by the recorder.
func (f *Flight) Record(e Event) {
	if f == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	f.mu.Lock()
	f.seq++
	e.Seq = f.seq
	f.buf[f.next] = e
	f.next++
	if f.next == len(f.buf) {
		f.next = 0
		f.wrapped = true
	}
	f.mu.Unlock()
}

// Len reports how many events are retained.
func (f *Flight) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.wrapped {
		return len(f.buf)
	}
	return f.next
}

// Events returns the retained events, oldest first.
func (f *Flight) Events() []Event {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []Event
	if f.wrapped {
		out = make([]Event, 0, len(f.buf))
		out = append(out, f.buf[f.next:]...)
		out = append(out, f.buf[:f.next]...)
		return out
	}
	return append([]Event(nil), f.buf[:f.next]...)
}

// DeviceEvents returns the retained events for one device, oldest
// first.
func (f *Flight) DeviceEvents(device string) []Event {
	if f == nil {
		return nil
	}
	var out []Event
	for _, e := range f.Events() {
		if e.Device == device {
			out = append(out, e)
		}
	}
	return out
}

// DropDevice removes every retained event for one device, preserving
// the order (and Seq numbers) of the rest. The sequence counter is not
// rewound, so later events still sort after the dropped ones. This is
// the teardown path for released or forgotten devices: a device ID that
// is re-enrolled later must not inherit the previous occupant's breaker
// or quarantine history.
func (f *Flight) DropDevice(device string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var kept []Event
	if f.wrapped {
		kept = make([]Event, 0, len(f.buf))
		for _, e := range f.buf[f.next:] {
			if e.Device != device {
				kept = append(kept, e)
			}
		}
		for _, e := range f.buf[:f.next] {
			if e.Device != device {
				kept = append(kept, e)
			}
		}
	} else {
		kept = make([]Event, 0, f.next)
		for _, e := range f.buf[:f.next] {
			if e.Device != device {
				kept = append(kept, e)
			}
		}
	}
	if len(kept) == len(f.buf) {
		return // nothing dropped, ring unchanged
	}
	buf := make([]Event, len(f.buf))
	copy(buf, kept)
	f.buf = buf
	f.next = len(kept)
	f.wrapped = false
	if f.next == len(f.buf) {
		f.next = 0
		f.wrapped = true
	}
}

// Dump writes a human-readable dump, oldest first.
func (f *Flight) Dump(w io.Writer) error {
	if f == nil {
		_, err := fmt.Fprintln(w, "flight recorder: disabled")
		return err
	}
	events := f.Events()
	if len(events) == 0 {
		_, err := fmt.Fprintln(w, "flight recorder: no events")
		return err
	}
	if _, err := fmt.Fprintf(w, "flight recorder: %d event(s)\n", len(events)); err != nil {
		return err
	}
	for _, e := range events {
		if _, err := fmt.Fprintf(w, "  %s\n", e); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the retained events as a JSON array, oldest first.
func (f *Flight) WriteJSON(w io.Writer) error {
	if f == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	events := f.Events()
	if events == nil {
		events = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(events)
}
