package obs

import (
	"bufio"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer serializes spans as Chrome trace-event JSON — one complete
// ("ph":"X") event per line inside an array — directly loadable in
// Perfetto or chrome://tracing. Timestamps are monotonic, measured from
// the tracer's construction. A nil *Tracer is the disabled state: every
// operation on it (and on Scopes and Spans derived from it) is a no-op
// with zero allocations.
//
// Serialization happens under one mutex into a reused buffer; callers
// on different goroutines interleave whole events, never bytes.
//
//lofat:nilsafe
type Tracer struct {
	base    time.Time
	nextTID atomic.Int64
	events  atomic.Uint64

	mu sync.Mutex
	//lofat:guardedby mu
	w *bufio.Writer
	//lofat:guardedby mu
	buf []byte
	//lofat:guardedby mu
	wrote bool
	//lofat:guardedby mu
	err error
}

// NewTracer returns a tracer writing trace events to w. Call Close to
// terminate the JSON array and flush buffered events.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{base: time.Now(), w: bufio.NewWriterSize(w, 32<<10)}
}

// NextTID allocates a fresh track ID. Spans sharing a track nest by
// time containment in Perfetto, so each logical lane (a worker, a
// sweep) takes one TID and emits its nested spans on it. Returns 0 on a
// nil tracer.
func (t *Tracer) NextTID() int64 {
	if t == nil {
		return 0
	}
	return t.nextTID.Add(1)
}

// Events reports how many trace events have been emitted.
func (t *Tracer) Events() uint64 {
	if t == nil {
		return 0
	}
	return t.events.Load()
}

// Close terminates the JSON array and flushes. The tracer must not be
// used afterwards. Safe on nil.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrote {
		t.w.WriteString("[]\n")
	} else {
		t.w.WriteString("\n]\n")
	}
	if err := t.w.Flush(); err != nil {
		return err
	}
	return t.err
}

// emit writes one complete event. start/dur are nanoseconds relative to
// the tracer base; args are up to two key/value pairs (empty keys are
// skipped).
func (t *Tracer) emit(name, cat string, tid int64, startNS, durNS int64, k1, v1, k2, v2 string) {
	if t == nil {
		return
	}
	t.events.Add(1)
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.buf[:0]
	if t.wrote {
		b = append(b, ",\n"...)
	} else {
		b = append(b, "[\n"...)
		t.wrote = true
	}
	b = append(b, `{"name":`...)
	b = appendJSONString(b, name)
	b = append(b, `,"cat":`...)
	b = appendJSONString(b, cat)
	b = append(b, `,"ph":"X","pid":1,"tid":`...)
	b = strconv.AppendInt(b, tid, 10)
	b = append(b, `,"ts":`...)
	b = appendMicros(b, startNS)
	b = append(b, `,"dur":`...)
	b = appendMicros(b, durNS)
	if k1 != "" || k2 != "" {
		b = append(b, `,"args":{`...)
		first := true
		if k1 != "" {
			b = appendJSONString(b, k1)
			b = append(b, ':')
			b = appendJSONString(b, v1)
			first = false
		}
		if k2 != "" {
			if !first {
				b = append(b, ',')
			}
			b = appendJSONString(b, k2)
			b = append(b, ':')
			b = appendJSONString(b, v2)
		}
		b = append(b, '}')
	}
	b = append(b, '}')
	t.buf = b
	if _, err := t.w.Write(b); err != nil && t.err == nil {
		t.err = err
	}
}

// appendMicros renders ns as microseconds with nanosecond precision
// (the trace-event "ts"/"dur" unit is microseconds).
func appendMicros(b []byte, ns int64) []byte {
	if ns < 0 {
		ns = 0
	}
	b = strconv.AppendInt(b, ns/1e3, 10)
	b = append(b, '.')
	frac := ns % 1e3
	b = append(b, byte('0'+frac/100), byte('0'+frac/10%10), byte('0'+frac%10))
	return b
}

// appendJSONString appends s as a quoted JSON string, escaping the
// characters the grammar requires.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c >= 0x20:
			b = append(b, c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\t':
			b = append(b, '\\', 't')
		default:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		}
	}
	return append(b, '"')
}

// Scope is a tracing context handed down a call path: the tracer plus
// the track its spans belong to. The zero Scope is disabled; Scope is a
// small value, passed by copy, never heap-allocated.
type Scope struct {
	T   *Tracer
	TID int64
}

// Enabled reports whether spans started from this scope are recorded.
func (s Scope) Enabled() bool { return s.T != nil }

// Start opens a span now. The returned Span is a value; finish it with
// End (or EndArg). On a disabled scope this is free.
func (s Scope) Start(name, cat string) Span {
	if s.T == nil {
		return Span{}
	}
	return Span{t: s.T, tid: s.TID, name: name, cat: cat, start: int64(time.Since(s.T.base))}
}

// StartAt opens a span whose beginning is backdated to start (for
// example a queue-wait span measured from the enqueue timestamp).
func (s Scope) StartAt(name, cat string, start time.Time) Span {
	if s.T == nil {
		return Span{}
	}
	ns := int64(start.Sub(s.T.base))
	if ns < 0 {
		ns = 0
	}
	return Span{t: s.T, tid: s.TID, name: name, cat: cat, start: ns}
}

// Span is one in-flight trace span. It carries up to two string args;
// attach them with Arg before calling End. The zero Span (from a
// disabled scope) ignores everything.
type Span struct {
	t         *Tracer
	tid       int64
	start     int64
	name, cat string
	k1, v1    string
	k2, v2    string
}

// Arg attaches a key/value pair (at most two are kept) and returns the
// updated span, so it chains: sc.Start(...).Arg("device", id).
func (sp Span) Arg(k, v string) Span {
	if sp.t == nil {
		return sp
	}
	if sp.k1 == "" {
		sp.k1, sp.v1 = k, v
	} else if sp.k2 == "" {
		sp.k2, sp.v2 = k, v
	}
	return sp
}

// End emits the span with duration measured to now.
func (sp Span) End() {
	if sp.t == nil {
		return
	}
	dur := int64(time.Since(sp.t.base)) - sp.start
	if dur < 0 {
		dur = 0
	}
	sp.t.emit(sp.name, sp.cat, sp.tid, sp.start, dur, sp.k1, sp.v1, sp.k2, sp.v2)
}
