package filter

import (
	"testing"

	"lofat/internal/isa"
)

// TestISREventsHashedDirectInsideLoop: an interrupt that preempts an
// active loop must hash the entry edge, every handler event, and the
// return edge directly — no loop attribution, no iteration counting,
// no pushes — and the interrupted loop's context must survive intact
// so the loop keeps counting after mret.
func TestISREventsHashedDirectInsideLoop(t *testing.T) {
	f := New(Config{})

	// Establish a loop: taken backward condbr 0x110 -> 0x100.
	ops := f.Step(ev(0x110, 0x100, isa.KindCondBr, true, false), nil)
	if !eq(kinds(ops), OpHashDirect, OpLoopPush) {
		t.Fatalf("loop setup ops = %v", kinds(ops))
	}
	if f.Depth() != 1 {
		t.Fatalf("Depth = %d", f.Depth())
	}

	// Interrupt dispatch from inside the body to the vector at 0x400.
	ops = f.Step(ev(0x104, 0x400, isa.KindIRQEnter, true, false), nil)
	if !eq(kinds(ops), OpHashDirect) {
		t.Fatalf("IRQ enter ops = %v", kinds(ops))
	}
	if ops[0].Pair.Src != 0x104 || ops[0].Pair.Dest != 0x400 {
		t.Errorf("entry pair = %+v", ops[0].Pair)
	}

	// Handler control flow: a backward branch that would normally push
	// a loop, and a jump — both must be hashed direct with no
	// bookkeeping while in the handler.
	ops = f.Step(ev(0x408, 0x404, isa.KindCondBr, true, false), nil)
	if !eq(kinds(ops), OpHashDirect) {
		t.Fatalf("handler back-branch ops = %v", kinds(ops))
	}
	if f.Depth() != 1 {
		t.Fatalf("handler back-branch pushed a loop: depth %d", f.Depth())
	}
	ops = f.Step(ev(0x40c, 0x414, isa.KindJump, true, false), nil)
	if !eq(kinds(ops), OpHashDirect) {
		t.Fatalf("handler jump ops = %v", kinds(ops))
	}

	// Return-from-interrupt back to the interrupted PC.
	ops = f.Step(ev(0x418, 0x104, isa.KindIRQRet, true, false), nil)
	if !eq(kinds(ops), OpHashDirect) {
		t.Fatalf("IRQ ret ops = %v", kinds(ops))
	}
	if f.Depth() != 1 {
		t.Fatalf("loop context lost across ISR: depth %d", f.Depth())
	}

	// The interrupted loop resumes: the back-edge is attributed to the
	// loop and completes an iteration, exactly as if never interrupted.
	ops = f.Step(ev(0x110, 0x100, isa.KindCondBr, true, false), nil)
	if !eq(kinds(ops), OpLoopEvent, OpIterEnd) {
		t.Fatalf("post-ISR back-edge ops = %v", kinds(ops))
	}
}

// TestISRResetClearsHandlerState: Reset in the middle of a handler
// must not leave the next run hashing everything directly.
func TestISRResetClearsHandlerState(t *testing.T) {
	f := New(Config{})
	f.Step(ev(0x104, 0x400, isa.KindIRQEnter, true, false), nil)
	f.Reset()
	// A backward branch must push a loop again — it would not if the
	// filter still believed it was inside a handler.
	ops := f.Step(ev(0x110, 0x100, isa.KindCondBr, true, false), nil)
	if !eq(kinds(ops), OpHashDirect, OpLoopPush) {
		t.Fatalf("post-Reset ops = %v", kinds(ops))
	}
}

// TestISROutsideLoopHashDirect: entry/exit edges with no active loop
// are plain direct hashes, and handler state toggles correctly across
// repeated dispatches.
func TestISROutsideLoopHashDirect(t *testing.T) {
	f := New(Config{})
	for i := 0; i < 3; i++ {
		ops := f.Step(ev(0x200, 0x400, isa.KindIRQEnter, true, false), nil)
		if !eq(kinds(ops), OpHashDirect) {
			t.Fatalf("dispatch %d enter ops = %v", i, kinds(ops))
		}
		ops = f.Step(ev(0x404, 0x200, isa.KindIRQRet, true, false), nil)
		if !eq(kinds(ops), OpHashDirect) {
			t.Fatalf("dispatch %d ret ops = %v", i, kinds(ops))
		}
	}
	// Normal loop detection works after the handlers are done.
	ops := f.Step(ev(0x210, 0x204, isa.KindCondBr, true, false), nil)
	if !eq(kinds(ops), OpHashDirect, OpLoopPush) {
		t.Fatalf("post-ISR loop push ops = %v", kinds(ops))
	}
}
