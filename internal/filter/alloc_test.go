package filter

import (
	"testing"

	"lofat/internal/isa"
	"lofat/internal/trace"
)

// TestFilterHotPathZeroAlloc is the runtime proof behind the
// //lofat:zeroalloc annotations on Step, Flush, Reset, and Depth: a
// full loop lifecycle (push, iterate, exit) into a reused Op buffer
// allocates nothing in the steady state.
func TestFilterHotPathZeroAlloc(t *testing.T) {
	f := New(Config{})
	out := make([]Op, 0, 16)
	evt := func(pc, next uint32, kind isa.ControlFlowKind) trace.Event {
		return trace.Event{PC: pc, NextPC: next, Kind: kind, Taken: true}
	}
	run := func() {
		out = f.Step(evt(0x120, 0x100, isa.KindCondBr), out[:0]) // back-edge: push
		out = f.Step(evt(0x11c, 0x100, isa.KindCondBr), out[:0]) // iteration boundary
		out = f.Step(evt(0x118, 0x200, isa.KindJump), out[:0])   // leaves the body: exit
		out = f.Flush(out[:0])
		_ = f.Depth()
		f.Reset()
	}
	run() // warm the Op buffer and loop stack capacity
	if n := testing.AllocsPerRun(200, run); n != 0 {
		t.Fatalf("filter hot path allocates %v per run, want 0", n)
	}
	if f.Depth() != 0 {
		t.Fatalf("loop stack not drained: depth %d", f.Depth())
	}
}
