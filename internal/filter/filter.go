// Package filter implements the LO-FAT branch filter of §4/§5.1: the
// unit "tightly coupled to the processor" that inspects every retired
// instruction, filters in branch/jump/return instructions, emits their
// (Src,Dest) pairs, and performs run-time loop detection WITHOUT any
// software instrumentation.
//
// Loop heuristic (§5.1): RISC-V subroutine calls with multiple call
// sites are linking (they update the link register), so the target of a
// taken, non-linking, direct backward branch is treated as a loop entry
// node, and the basic block following the branch instruction as the loop
// exit node. Entry/exit addresses are held in registers to track
// iterations and nesting depth; loop termination is detected when
// execution proceeds to or past the active exit node (sequentially or
// via a non-linking branch). Linking calls from inside a loop suspend
// exit detection until the matching return (call-depth counting), so
// subroutines invoked from loop bodies do not falsely terminate the loop.
//
// The filter is deliberately deterministic: the verifier re-runs the
// same algorithm over a golden execution, so every convention here
// (pre-push attribution of the first back-edge, cascade pop order,
// boundary-before-push) is part of the measurement definition.
package filter

import (
	"lofat/internal/hashengine"
	"lofat/internal/isa"
	"lofat/internal/trace"
)

// SymbolKind is the path-encoding alphabet of Figure 4.
type SymbolKind uint8

// Path symbols: conditional branches contribute a taken/not-taken bit,
// direct jumps a '1', and indirect transfers (indirect calls and
// returns) an n-bit re-encoded target (§5.2).
const (
	SymCond SymbolKind = iota
	SymJump
	SymIndirect
)

// OpKind discriminates the control operations the filter emits — the
// hardware ctrl signals of Figure 3.
type OpKind uint8

// Filter output operations.
const (
	// OpHashDirect: non-loop control-flow event; hash (Src,Dest)
	// immediately (non_loops ctrl).
	OpHashDirect OpKind = iota
	// OpLoopEvent: control-flow event attributed to the innermost
	// active loop (branch_status ctrl).
	OpLoopEvent
	// OpIterEnd: execution re-entered the active loop's entry node —
	// one iteration completed (loops_status ctrl).
	OpIterEnd
	// OpLoopPush: a new loop was detected (first back-edge execution);
	// the triggering event itself was already attributed to the
	// enclosing context.
	OpLoopPush
	// OpLoopExit: the innermost active loop terminated (loop_end ctrl).
	OpLoopExit
)

// Op is one control operation, in event order.
type Op struct {
	Kind   OpKind
	Pair   hashengine.Pair // OpHashDirect, OpLoopEvent
	Sym    SymbolKind      // OpLoopEvent
	Taken  bool            // OpLoopEvent with SymCond
	Target uint32          // OpLoopEvent with SymIndirect
	Entry  uint32          // OpLoopPush
	Exit   uint32          // OpLoopPush
}

// Config parameterizes the filter hardware.
type Config struct {
	// MaxDepth is the supported loop nesting depth (paper: 3). Loops
	// nested deeper are not tracked: their events remain attributed to
	// the deepest tracked loop, trading compression for area exactly
	// as §5.2 describes.
	MaxDepth int
}

// DefaultConfig matches the paper's prototype.
var DefaultConfig = Config{MaxDepth: 3}

type loopCtx struct {
	entry uint32
	exit  uint32
	depth int // pending linking calls (exit detection suppressed while >0)
}

// Filter is the branch filter state machine.
type Filter struct {
	cfg   Config
	stack []loopCtx

	// inISR is set between an IRQ-enter event and the matching
	// return-from-interrupt. Handler control flow is hashed directly,
	// outside any loop context (see Step).
	inISR bool

	// Stats for §6 evaluation.
	Events     uint64 // control-flow events seen
	LoopEvents uint64 // events attributed to loops
	Pushes     uint64
	Exits      uint64
}

// New returns a filter with the given configuration.
func New(cfg Config) *Filter {
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = DefaultConfig.MaxDepth
	}
	return &Filter{cfg: cfg}
}

// Depth reports the current active loop nesting depth.
//
//lofat:zeroalloc
func (f *Filter) Depth() int { return len(f.stack) }

// Reset clears all loop state for a new attestation run.
//
//lofat:zeroalloc
func (f *Filter) Reset() {
	f.stack = f.stack[:0]
	f.inISR = false
	f.Events = 0
	f.LoopEvents = 0
	f.Pushes = 0
	f.Exits = 0
}

// top returns the innermost active loop, or nil.
//
//lofat:zeroalloc
func (f *Filter) top() *loopCtx {
	if len(f.stack) == 0 {
		return nil
	}
	return &f.stack[len(f.stack)-1]
}

// inRange reports whether pc is within the loop body [entry, exit).
//
//lofat:zeroalloc
func (l *loopCtx) inRange(pc uint32) bool {
	return pc >= l.entry && pc < l.exit
}

// Step processes one retired-instruction event, appending the resulting
// control operations to out (which is returned, possibly grown).
// Non-control-flow events produce no operations.
//
//lofat:zeroalloc
func (f *Filter) Step(e trace.Event, out []Op) []Op {
	if e.Kind == isa.KindNone {
		return out
	}
	f.Events++
	src, dest := e.SrcDest()
	pair := hashengine.Pair{Src: src, Dest: dest}

	// 0. Interrupt handling: an asynchronous transfer and everything the
	// handler executes are hashed directly, outside any loop context.
	// The entry edge (interrupted PC → vector) and the return edge
	// (mret PC → resumption point) bracket the handler in the
	// measurement, so a forged or redirected handler path changes A,
	// while the main program's loop bookkeeping is untouched — the
	// interrupted loop's entry/exit registers, call depth, and path
	// symbols resume exactly where dispatch suspended them, matching
	// the paper's handling of asynchronous transfers.
	switch {
	case e.Kind == isa.KindIRQEnter:
		f.inISR = true
		out = append(out, Op{Kind: OpHashDirect, Pair: pair})
		return out
	case e.Kind == isa.KindIRQRet:
		f.inISR = false
		out = append(out, Op{Kind: OpHashDirect, Pair: pair})
		return out
	case f.inISR:
		out = append(out, Op{Kind: OpHashDirect, Pair: pair})
		return out
	}

	// 1. Attribute the event to the innermost active loop, or hash it
	// directly. Attribution happens against the PRE-update stack: the
	// back-edge that first reveals a loop is measured in the enclosing
	// context (the loop body proper is measured from iteration 2 on;
	// the verifier applies the identical convention). The same top
	// context then takes the call-depth bookkeeping of step 2.
	if top := f.top(); top != nil {
		f.LoopEvents++
		op := Op{Kind: OpLoopEvent, Pair: pair}
		switch e.Kind {
		case isa.KindCondBr:
			op.Sym = SymCond
			op.Taken = e.Taken
		case isa.KindJump:
			op.Sym = SymJump
		case isa.KindIndirect, isa.KindReturn:
			op.Sym = SymIndirect
			op.Target = dest
		}
		out = append(out, op)

		// 2. Call-depth bookkeeping: linking calls suspend exit
		// detection; returns resume it when they balance.
		if e.Linking {
			top.depth++
		} else if e.Kind == isa.KindReturn && top.depth > 0 {
			top.depth--
		}
	} else {
		out = append(out, Op{Kind: OpHashDirect, Pair: pair})
	}

	// 3. Cascade loop exits: pop every loop whose body no longer
	// contains the next PC (and whose call depth is balanced).
	for {
		top := f.top()
		if top == nil || top.depth > 0 || top.inRange(e.NextPC) {
			break
		}
		out = append(out, Op{Kind: OpLoopExit})
		f.stack = f.stack[:len(f.stack)-1]
		f.Exits++
	}

	// 4. Iteration boundary: arriving at the entry node of the (new)
	// top loop completes one iteration.
	if top := f.top(); top != nil && top.depth == 0 && e.NextPC == top.entry {
		out = append(out, Op{Kind: OpIterEnd})
		return out // a boundary cannot also push (dest == entry)
	}

	// 5. Loop detection: a taken, non-linking, DIRECT backward branch
	// reveals a new loop with entry = target, exit = branch PC + 4.
	backward := e.Taken && e.NextPC < e.PC
	direct := e.Kind == isa.KindCondBr || e.Kind == isa.KindJump
	if backward && direct && !e.Linking && len(f.stack) < f.cfg.MaxDepth {
		f.stack = append(f.stack, loopCtx{entry: e.NextPC, exit: e.PC + 4})
		f.Pushes++
		out = append(out, Op{Kind: OpLoopPush, Entry: e.NextPC, Exit: e.PC + 4})
	}
	return out
}

// Flush terminates all still-active loops (end of attested execution,
// e.g. an attested region that halts inside a loop), emitting the
// corresponding exit operations.
//
//lofat:zeroalloc
func (f *Filter) Flush(out []Op) []Op {
	for range f.stack {
		out = append(out, Op{Kind: OpLoopExit})
		f.Exits++
	}
	f.stack = f.stack[:0]
	return out
}
