package filter

import (
	"testing"

	"lofat/internal/isa"
	"lofat/internal/trace"
)

// ev builds a synthetic retired-instruction event.
func ev(pc, next uint32, kind isa.ControlFlowKind, taken, linking bool) trace.Event {
	return trace.Event{PC: pc, NextPC: next, Kind: kind, Taken: taken, Linking: linking}
}

func kinds(ops []Op) []OpKind {
	out := make([]OpKind, len(ops))
	for i, op := range ops {
		out[i] = op.Kind
	}
	return out
}

func eq(a []OpKind, b ...OpKind) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNonControlFlowIgnored(t *testing.T) {
	f := New(Config{})
	ops := f.Step(ev(0x100, 0x104, isa.KindNone, false, false), nil)
	if len(ops) != 0 {
		t.Fatalf("ops = %v, want none", ops)
	}
	if f.Events != 0 {
		t.Errorf("Events = %d", f.Events)
	}
}

func TestForwardBranchHashedDirectly(t *testing.T) {
	f := New(Config{})
	ops := f.Step(ev(0x100, 0x120, isa.KindCondBr, true, false), nil)
	if !eq(kinds(ops), OpHashDirect) {
		t.Fatalf("ops = %v", kinds(ops))
	}
	if ops[0].Pair.Src != 0x100 || ops[0].Pair.Dest != 0x120 {
		t.Errorf("pair = %+v", ops[0].Pair)
	}
	// Not-taken branch also produces a measured event (fall-through edge).
	ops = f.Step(ev(0x120, 0x124, isa.KindCondBr, false, false), nil)
	if !eq(kinds(ops), OpHashDirect) {
		t.Fatalf("not-taken ops = %v", kinds(ops))
	}
}

func TestBackwardBranchPushesLoop(t *testing.T) {
	f := New(Config{})
	ops := f.Step(ev(0x120, 0x100, isa.KindCondBr, true, false), nil)
	if !eq(kinds(ops), OpHashDirect, OpLoopPush) {
		t.Fatalf("ops = %v", kinds(ops))
	}
	push := ops[1]
	if push.Entry != 0x100 || push.Exit != 0x124 {
		t.Errorf("push = %+v, want entry 0x100 exit 0x124", push)
	}
	if f.Depth() != 1 {
		t.Errorf("depth = %d", f.Depth())
	}
}

func TestLinkingBackwardCallDoesNotPush(t *testing.T) {
	f := New(Config{})
	// jal ra, earlier-function: linking, backward — a subroutine call,
	// not a loop (the §5.1 heuristic's core discrimination).
	ops := f.Step(ev(0x200, 0x100, isa.KindJump, true, true), nil)
	if !eq(kinds(ops), OpHashDirect) {
		t.Fatalf("ops = %v", kinds(ops))
	}
	// Backward return: also not a loop.
	ops = f.Step(ev(0x180, 0x104, isa.KindReturn, true, false), nil)
	if !eq(kinds(ops), OpHashDirect) {
		t.Fatalf("return ops = %v", kinds(ops))
	}
	if f.Depth() != 0 {
		t.Errorf("depth = %d", f.Depth())
	}
}

// One full loop life cycle: push, two encoded iterations, exit.
func TestLoopLifecycle(t *testing.T) {
	f := New(Config{})
	var ops []Op
	step := func(e trace.Event) []Op {
		ops = f.Step(e, ops[:0])
		return ops
	}

	// First back-edge: hashed in enclosing context + push.
	if !eq(kinds(step(ev(0x120, 0x100, isa.KindCondBr, true, false))), OpHashDirect, OpLoopPush) {
		t.Fatalf("push: %v", kinds(ops))
	}
	// In-loop forward branch (stays inside).
	if !eq(kinds(step(ev(0x104, 0x110, isa.KindCondBr, true, false))), OpLoopEvent) {
		t.Fatalf("in-loop: %v", kinds(ops))
	}
	// Back-edge again: loop event + iteration end.
	if !eq(kinds(step(ev(0x120, 0x100, isa.KindCondBr, true, false))), OpLoopEvent, OpIterEnd) {
		t.Fatalf("iter end: %v", kinds(ops))
	}
	// Exit: branch to the exit node (0x124).
	if !eq(kinds(step(ev(0x104, 0x124, isa.KindCondBr, true, false))), OpLoopEvent, OpLoopExit) {
		t.Fatalf("exit: %v", kinds(ops))
	}
	if f.Depth() != 0 {
		t.Errorf("depth after exit = %d", f.Depth())
	}
	if f.Pushes != 1 || f.Exits != 1 {
		t.Errorf("pushes/exits = %d/%d", f.Pushes, f.Exits)
	}
}

// Sequential fall-through past the exit node terminates the loop even
// without a branch (a not-taken bottom-test conditional).
func TestSequentialExit(t *testing.T) {
	f := New(Config{})
	f.Step(ev(0x120, 0x100, isa.KindCondBr, true, false), nil) // push, exit=0x124
	// Bottom-test branch not taken: falls through to 0x124 == exit.
	ops := f.Step(ev(0x120, 0x124, isa.KindCondBr, false, false), nil)
	if !eq(kinds(ops), OpLoopEvent, OpLoopExit) {
		t.Fatalf("ops = %v", kinds(ops))
	}
}

// A break jumping PAST the exit node also terminates.
func TestBreakPastExit(t *testing.T) {
	f := New(Config{})
	f.Step(ev(0x120, 0x100, isa.KindCondBr, true, false), nil)
	ops := f.Step(ev(0x110, 0x200, isa.KindJump, true, false), nil)
	if !eq(kinds(ops), OpLoopEvent, OpLoopExit) {
		t.Fatalf("ops = %v", kinds(ops))
	}
}

// Nested loops: inner loop pushes on its own back-edge; jumping to the
// outer entry pops the inner loop and marks an outer iteration.
func TestNestedLoops(t *testing.T) {
	f := New(Config{})
	var ops []Op
	// Outer: entry 0x100, exit 0x144 (back-edge at 0x140).
	f.Step(ev(0x140, 0x100, isa.KindCondBr, true, false), nil)
	// Inner: entry 0x110, exit 0x130 (back-edge at 0x12C).
	ops = f.Step(ev(0x12C, 0x110, isa.KindCondBr, true, false), nil)
	if !eq(kinds(ops), OpLoopEvent, OpLoopPush) {
		t.Fatalf("inner push: %v", kinds(ops))
	}
	if f.Depth() != 2 {
		t.Fatalf("depth = %d", f.Depth())
	}
	// Inner iterates once more.
	ops = f.Step(ev(0x12C, 0x110, isa.KindCondBr, true, false), nil)
	if !eq(kinds(ops), OpLoopEvent, OpIterEnd) {
		t.Fatalf("inner iter: %v", kinds(ops))
	}
	// Inner exits by falling to 0x130, still inside outer.
	ops = f.Step(ev(0x12C, 0x130, isa.KindCondBr, false, false), nil)
	if !eq(kinds(ops), OpLoopEvent, OpLoopExit) {
		t.Fatalf("inner exit: %v", kinds(ops))
	}
	if f.Depth() != 1 {
		t.Fatalf("depth after inner exit = %d", f.Depth())
	}
	// Outer back-edge: iteration boundary on the outer loop.
	ops = f.Step(ev(0x140, 0x100, isa.KindCondBr, true, false), nil)
	if !eq(kinds(ops), OpLoopEvent, OpIterEnd) {
		t.Fatalf("outer iter: %v", kinds(ops))
	}
}

// Jumping straight from inside the inner loop to the outer entry pops
// the inner loop and completes an outer iteration in one event.
func TestCascadePopWithOuterBoundary(t *testing.T) {
	f := New(Config{})
	f.Step(ev(0x140, 0x100, isa.KindCondBr, true, false), nil) // outer
	f.Step(ev(0x12C, 0x110, isa.KindCondBr, true, false), nil) // inner
	ops := f.Step(ev(0x118, 0x100, isa.KindJump, true, false), nil)
	if !eq(kinds(ops), OpLoopEvent, OpLoopExit, OpIterEnd) {
		t.Fatalf("ops = %v", kinds(ops))
	}
	if f.Depth() != 1 {
		t.Errorf("depth = %d", f.Depth())
	}
}

// Linking calls from a loop body suspend exit detection until the
// matching return, even though the callee lies outside the loop body.
func TestCallFromLoopSuppressed(t *testing.T) {
	f := New(Config{})
	f.Step(ev(0x120, 0x100, isa.KindCondBr, true, false), nil) // loop [0x100, 0x124)
	// Call out to 0x400.
	ops := f.Step(ev(0x108, 0x400, isa.KindJump, true, true), nil)
	if !eq(kinds(ops), OpLoopEvent) {
		t.Fatalf("call popped the loop: %v", kinds(ops))
	}
	// Callee-internal branch, far outside the loop: still attributed,
	// no exit.
	ops = f.Step(ev(0x404, 0x410, isa.KindCondBr, true, false), nil)
	if !eq(kinds(ops), OpLoopEvent) {
		t.Fatalf("callee branch popped the loop: %v", kinds(ops))
	}
	// Nested call and return.
	f.Step(ev(0x410, 0x500, isa.KindIndirect, true, true), nil)
	ops = f.Step(ev(0x504, 0x414, isa.KindReturn, true, false), nil)
	if !eq(kinds(ops), OpLoopEvent) {
		t.Fatalf("inner return popped the loop: %v", kinds(ops))
	}
	// Return to the loop body: depth balances, loop still active.
	ops = f.Step(ev(0x41C, 0x10C, isa.KindReturn, true, false), nil)
	if !eq(kinds(ops), OpLoopEvent) {
		t.Fatalf("return popped the loop: %v", kinds(ops))
	}
	if f.Depth() != 1 {
		t.Errorf("depth = %d", f.Depth())
	}
	// Back-edge: normal iteration.
	ops = f.Step(ev(0x120, 0x100, isa.KindCondBr, true, false), nil)
	if !eq(kinds(ops), OpLoopEvent, OpIterEnd) {
		t.Fatalf("iteration after call: %v", kinds(ops))
	}
}

// A return with balanced call depth exits the loop (returning out of the
// function that contains it).
func TestReturnExitsLoop(t *testing.T) {
	f := New(Config{})
	f.Step(ev(0x120, 0x100, isa.KindCondBr, true, false), nil)
	ops := f.Step(ev(0x110, 0x80, isa.KindReturn, true, false), nil)
	if !eq(kinds(ops), OpLoopEvent, OpLoopExit) {
		t.Fatalf("ops = %v", kinds(ops))
	}
}

// Depth beyond MaxDepth is not tracked: no push, events attributed to
// the deepest tracked loop.
func TestMaxDepth(t *testing.T) {
	f := New(Config{MaxDepth: 2})
	f.Step(ev(0x1F0, 0x100, isa.KindCondBr, true, false), nil) // depth 1
	f.Step(ev(0x1E0, 0x110, isa.KindCondBr, true, false), nil) // depth 2
	ops := f.Step(ev(0x1D0, 0x120, isa.KindCondBr, true, false), nil)
	if !eq(kinds(ops), OpLoopEvent) {
		t.Fatalf("ops = %v, want attribution only (no push)", kinds(ops))
	}
	if f.Depth() != 2 {
		t.Errorf("depth = %d, want 2", f.Depth())
	}
}

func TestFlush(t *testing.T) {
	f := New(Config{})
	f.Step(ev(0x1F0, 0x100, isa.KindCondBr, true, false), nil)
	f.Step(ev(0x1E0, 0x110, isa.KindCondBr, true, false), nil)
	ops := f.Flush(nil)
	if !eq(kinds(ops), OpLoopExit, OpLoopExit) {
		t.Fatalf("flush ops = %v", kinds(ops))
	}
	if f.Depth() != 0 {
		t.Errorf("depth = %d", f.Depth())
	}
}

func TestReset(t *testing.T) {
	f := New(Config{})
	f.Step(ev(0x120, 0x100, isa.KindCondBr, true, false), nil)
	f.Reset()
	if f.Depth() != 0 || f.Events != 0 || f.Pushes != 0 {
		t.Error("Reset left state behind")
	}
}

// Symbol classification carried on loop events.
func TestLoopEventSymbols(t *testing.T) {
	f := New(Config{})
	f.Step(ev(0x200, 0x100, isa.KindCondBr, true, false), nil) // loop [0x100,0x204)
	cases := []struct {
		e   trace.Event
		sym SymbolKind
		tkn bool
		tgt uint32
	}{
		{ev(0x104, 0x110, isa.KindCondBr, true, false), SymCond, true, 0},
		{ev(0x110, 0x114, isa.KindCondBr, false, false), SymCond, false, 0},
		{ev(0x114, 0x130, isa.KindJump, true, false), SymJump, false, 0},
		{ev(0x130, 0x150, isa.KindIndirect, true, true), SymIndirect, false, 0x150},
	}
	for i, c := range cases {
		ops := f.Step(c.e, nil)
		if len(ops) == 0 || ops[0].Kind != OpLoopEvent {
			t.Fatalf("case %d: ops = %v", i, ops)
		}
		op := ops[0]
		if op.Sym != c.sym || op.Taken != c.tkn {
			t.Errorf("case %d: sym/taken = %v/%v, want %v/%v", i, op.Sym, op.Taken, c.sym, c.tkn)
		}
		if c.sym == SymIndirect && op.Target != c.tgt {
			t.Errorf("case %d: target = %#x, want %#x", i, op.Target, c.tgt)
		}
	}
}
