package filter

import (
	"math/rand"
	"testing"

	"lofat/internal/isa"
	"lofat/internal/trace"
)

// randomEvent produces an arbitrary (not necessarily program-consistent)
// control-flow event: the filter is hardware and must stay well-defined
// on ANY stream the pipeline could emit.
func randomEvent(r *rand.Rand) trace.Event {
	kinds := []isa.ControlFlowKind{
		isa.KindNone, isa.KindCondBr, isa.KindJump, isa.KindIndirect, isa.KindReturn,
	}
	pc := 0x1000 + uint32(r.Intn(0x400))*4
	var next uint32
	taken := r.Intn(2) == 0
	kind := kinds[r.Intn(len(kinds))]
	switch kind {
	case isa.KindNone:
		next = pc + 4
		taken = false
	default:
		if taken {
			next = 0x1000 + uint32(r.Intn(0x400))*4
		} else {
			next = pc + 4
		}
	}
	linking := (kind == isa.KindJump || kind == isa.KindIndirect) && r.Intn(2) == 0
	return trace.Event{PC: pc, NextPC: next, Kind: kind, Taken: taken, Linking: linking}
}

// Invariants over arbitrary event streams: depth bounded and
// non-negative, op sequences well-formed (events only attributed while a
// loop is active, pushes/pops balanced), and no panics.
func TestFilterInvariantsOnArbitraryStreams(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		f := New(Config{MaxDepth: 3})
		depth := 0
		var ops []Op
		for i := 0; i < 5000; i++ {
			ops = f.Step(randomEvent(r), ops[:0])
			for _, op := range ops {
				switch op.Kind {
				case OpLoopPush:
					depth++
				case OpLoopExit:
					depth--
				case OpLoopEvent:
					if depth == 0 {
						t.Fatalf("seed %d: loop event with no active loop", seed)
					}
				case OpIterEnd:
					if depth == 0 {
						t.Fatalf("seed %d: iter end with no active loop", seed)
					}
				}
				if depth < 0 || depth > 3 {
					t.Fatalf("seed %d: depth %d out of bounds", seed, depth)
				}
			}
			if f.Depth() != depth {
				t.Fatalf("seed %d: filter depth %d != tracked %d", seed, f.Depth(), depth)
			}
		}
		ops = f.Flush(ops[:0])
		for _, op := range ops {
			if op.Kind != OpLoopExit {
				t.Fatalf("seed %d: flush emitted %v", seed, op.Kind)
			}
			depth--
		}
		if depth != 0 {
			t.Fatalf("seed %d: unbalanced push/pop: %d", seed, depth)
		}
		if f.Pushes != f.Exits {
			t.Fatalf("seed %d: pushes %d != exits %d after flush", seed, f.Pushes, f.Exits)
		}
	}
}

// The monitor must tolerate (and measure through) a desynchronized op
// stream — ops arriving without a preceding push. This guards the
// fail-safe: edges are never silently lost even if wiring breaks.
func TestMonitorDesyncSafety(t *testing.T) {
	// Local import cycle avoidance: exercised via the filter package's
	// op values but the monitor from its own package would create a
	// cycle here; covered in monitor's own tests instead. This test
	// pins the op-kind contract the monitor relies on.
	ops := []OpKind{OpHashDirect, OpLoopEvent, OpIterEnd, OpLoopPush, OpLoopExit}
	seen := map[OpKind]bool{}
	for _, k := range ops {
		if seen[k] {
			t.Fatalf("duplicate op kind %d", k)
		}
		seen[k] = true
	}
}
