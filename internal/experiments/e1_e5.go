package experiments

import (
	"fmt"

	"lofat/internal/attest"
	"lofat/internal/core"
	"lofat/internal/cpu"
	"lofat/internal/hashengine"
	"lofat/internal/workloads"
)

// measureWorkload runs a workload under the default device.
func measureWorkload(w workloads.Workload) (core.Measurement, error) {
	prog, err := w.Assemble()
	if err != nil {
		return core.Measurement{}, err
	}
	m, _, err := attest.Measure(prog, core.Config{}, w.Input, 50_000_000)
	return m, err
}

// E1Capture reproduces §6.1's functionality result: LO-FAT correctly
// captures and compresses the control flow of uninstrumented
// applications, including the Open Syringe Pump code.
func E1Capture() (Table, error) {
	t := Table{
		ID:    "E1",
		Title: "control-flow capture & compression per workload (§6.1 functionality)",
		Columns: []string{"workload", "cf events", "loops", "distinct paths",
			"hashed pairs", "deduped pairs", "compression", "metadata bytes"},
		Notes: []string{
			"paper: 'Simulation results confirmed the functionality of LO-FAT in correctly capturing and compressing the control flow (branches, loops, and nested loops) of an uninstrumented application.'",
		},
	}
	for _, w := range workloads.All() {
		m, err := measureWorkload(w)
		if err != nil {
			return t, err
		}
		var paths int
		for _, r := range m.Loops {
			paths += len(r.Paths)
		}
		st := m.Stats
		comp := 1.0
		if st.HashedPairs > 0 {
			comp = float64(st.ControlFlowEvents) / float64(st.HashedPairs)
		}
		t.Rows = append(t.Rows, []string{
			w.Name, u(st.ControlFlowEvents), d(len(m.Loops)), d(paths),
			u(st.HashedPairs), u(st.DedupedPairs), f2(comp) + "x",
			d(attest.MetadataSize(m.Loops)),
		})
	}
	return t, nil
}

// fig4Source is the paper's Figure 4 program (see internal/core tests).
const fig4Source = `
main:
	li   s0, 6
N2:	beqz s0, N7
N3:	andi t0, s0, 1
	beqz t0, N5
N4:	addi s1, s1, 10
	j    N6
N5:	addi s1, s1, 1
N6:	addi s0, s0, -1
	j    N2
N7:	li   a7, 93
	ecall
`

// E2PathEncoding reproduces Figure 4: the dashed path encodes as "011",
// the bold path as "0011".
func E2PathEncoding() (Table, error) {
	t := Table{
		ID:      "E2",
		Title:   "loop path encodings for the Figure 4 program",
		Columns: []string{"path", "encoding", "iterations", "paper"},
		Notes: []string{
			"paper: dashed path N2→N3→N5→N6→N2 is encoded as '011' and bold path N2→N3→N4→N6→N2 as '0011'.",
		},
	}
	m, err := measureSource(fig4Source, nil)
	if err != nil {
		return t, err
	}
	if len(m.Loops) != 1 {
		return t, fmt.Errorf("expected 1 loop, got %d", len(m.Loops))
	}
	rec := m.Loops[0]
	want := map[string]string{"0011": "bold N2→N3→N4→N6→N2", "011": "dashed N2→N3→N5→N6→N2"}
	for _, p := range rec.Paths {
		label, ok := want[p.Code.String()]
		if !ok {
			return t, fmt.Errorf("unexpected path encoding %q", p.Code)
		}
		t.Rows = append(t.Rows, []string{label, p.Code.String(), u(p.Count), "✓ matches"})
	}
	t.Rows = append(t.Rows, []string{"exit traversal N2→N7 (partial)", rec.Partial.String(), "—", "—"})
	return t, nil
}

func measureSource(src string, input []uint32) (core.Measurement, error) {
	return measureWorkload(workloads.Workload{Name: "inline", Source: src, Input: input})
}

// E3Overhead reproduces the performance claim of §6.1: LO-FAT incurs
// zero processor overhead while C-FLAT's cost is linear in the number of
// control-flow events.
func E3Overhead() (Table, error) {
	t := Table{
		ID:    "E3",
		Title: "run-time overhead: LO-FAT vs C-FLAT software attestation (§6.1)",
		Columns: []string{"workload", "base cycles", "cf events",
			"LO-FAT added cycles", "LO-FAT overhead", "C-FLAT added cycles", "C-FLAT overhead"},
		Notes: []string{
			"paper: 'LO-FAT ... does not incur any performance overhead for the attested software, as opposed to C-FLAT which incurs attestation overhead that is linearly dependent on the number of control-flow events.'",
		},
	}
	for _, w := range workloads.All() {
		prog, err := w.Assemble()
		if err != nil {
			return t, err
		}

		// Plain run for the base cycle count.
		mach, err := cpu.Load(prog, cpu.LoadOptions{})
		if err != nil {
			return t, err
		}
		mach.CPU.Input = w.Input
		if err := mach.CPU.Run(50_000_000); err != nil {
			return t, err
		}
		base := mach.CPU.Cycle

		// LO-FAT run: device attached, CPU cycles must be identical.
		mach2, err := cpu.Load(prog, cpu.LoadOptions{})
		if err != nil {
			return t, err
		}
		dev := core.NewDevice(core.Config{})
		mach2.CPU.TraceBatch = dev
		mach2.CPU.TraceCFOnly = dev.CFOnlyCompatible()
		mach2.CPU.Input = w.Input
		if err := mach2.CPU.Run(50_000_000); err != nil {
			return t, err
		}
		meas := dev.Finalize()
		lofatAdded := mach2.CPU.Cycle - base // structurally 0

		// C-FLAT run.
		cf, err := runCFLAT(w)
		if err != nil {
			return t, err
		}

		t.Rows = append(t.Rows, []string{
			w.Name, u(base), u(meas.Stats.ControlFlowEvents),
			u(lofatAdded), "1.00x",
			u(cf.AddedCycles()), f2(cf.Overhead()) + "x",
		})
	}
	return t, nil
}

// E4Latency reproduces the internal latency figures of §6.1: 2 cycles
// for branch tracking, 5 cycles at loop exit, zero stalls, no dropped
// trace data.
func E4Latency() (Table, error) {
	t := Table{
		ID:    "E4",
		Title: "device-internal latency (overlapped, never stalling) (§6.1)",
		Columns: []string{"workload", "stall cycles", "max device lag (cycles)",
			"drain cycles", "engine dropped pairs", "engine max FIFO"},
		Notes: []string{
			"paper: 'LO-FAT internally incurs latency of 2 clock cycles for branch instructions and loop status tracking and 5 clock cycles at loop exit ... LO-FAT simultaneously continues to absorb and process any incoming (Src,Dest)-pairs to prevent the processor from stalling or dropping trace information.'",
		},
	}
	for _, w := range workloads.All() {
		m, err := measureWorkload(w)
		if err != nil {
			return t, err
		}
		st := m.Stats
		t.Rows = append(t.Rows, []string{
			w.Name, u(st.ProcessorStallCycles), u(st.MaxLagCycles),
			u(st.DrainCycles), u(st.Engine.Dropped), d(st.Engine.MaxFIFO),
		})
	}
	return t, nil
}

// E5HashEngine reproduces §5.3: 64-bit absorb per cycle, 9-cycle block
// fill, 3-cycle busy window, FIFO coverage.
func E5HashEngine() (Table, error) {
	t := Table{
		ID:    "E5",
		Title: "SHA-3 hash engine timing (§5.3)",
		Columns: []string{"input rate (pairs/cycle)", "pairs", "cycles",
			"busy cycles", "max FIFO", "dropped", "throughput (pairs/cycle)"},
		Notes: []string{
			"paper: the 576-bit padding buffer absorbs a 64-bit (Src,Dest) pair per cycle for 9 cycles, then refuses input for 3 cycles; a small cache buffer prevents drops.",
			"sustainable engine throughput is 9/12 = 0.75 pairs/cycle; real branch streams are well below it.",
		},
	}
	for _, gap := range []int{1, 2, 4, 8} {
		e := hashengine.New(hashengine.Config{})
		const n = 1000
		fed := 0
		for cycle := 0; fed < n; cycle++ {
			if cycle%gap == 0 {
				if e.Enqueue(hashengine.Pair{Src: uint32(fed), Dest: uint32(fed * 3)}) {
					fed++
				}
			}
			e.Tick()
		}
		e.Drain()
		st := e.Stats()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("1/%d", gap), u(st.Absorbed), u(st.Cycles),
			u(st.BusyCycles), d(st.MaxFIFO), u(st.Dropped),
			f2(float64(st.Absorbed) / float64(st.Cycles)),
		})
	}
	return t, nil
}

func runCFLAT(w workloads.Workload) (cflatResult, error) {
	prog, err := w.Assemble()
	if err != nil {
		return cflatResult{}, err
	}
	return cflatRun(prog, w.Input)
}
