package experiments

import (
	"encoding/binary"
	"fmt"

	"lofat/internal/cfg"
	"lofat/internal/workloads"
)

// E11Heuristic is an extension experiment beyond the paper's tables: it
// cross-validates the §5.1 run-time loop heuristic (taken non-linking
// backward branch ⇒ loop) against dominance-based natural-loop analysis
// on the full workload suite. The paper justifies the heuristic by the
// RISC-V calling convention; this experiment quantifies it: zero false
// positives on compiler-convention code, with recursion as the one
// documented divergence (dominance sees the call cycle, the hardware
// intentionally tracks it through call/return hashing instead).
func E11Heuristic() (Table, error) {
	t := Table{
		ID:    "E11",
		Title: "loop-detection heuristic vs natural loops (extension of §5.1)",
		Columns: []string{"workload", "heuristic loops", "natural loops",
			"false positives", "missed headers", "note"},
		Notes: []string{
			"the heuristic is exact on loop code; 'missed' headers appear only for recursion, which LO-FAT deliberately measures via call/return edges rather than loop counters.",
		},
	}
	for _, w := range workloads.All2() {
		prog, err := w.Assemble()
		if err != nil {
			return t, err
		}
		words := make([]uint32, 0, len(prog.Data)/4)
		for i := 0; i+4 <= len(prog.Data); i += 4 {
			words = append(words, binary.LittleEndian.Uint32(prog.Data[i:]))
		}
		g, err := cfg.Build(prog.Text, prog.TextBase, words)
		if err != nil {
			return t, err
		}
		entry := prog.TextBase
		if m, ok := prog.Entry("main"); ok {
			entry = m
		}
		fp, missed := g.HeuristicVsNatural(entry)
		note := ""
		if len(missed) > 0 {
			note = "recursive cycle (by design)"
		}
		t.Rows = append(t.Rows, []string{
			w.Name,
			d(len(g.Loops())),
			d(len(g.NaturalLoops(entry))),
			d(len(fp)),
			d(len(missed)),
			note,
		})
		if len(fp) > 0 {
			return t, fmt.Errorf("%s: heuristic false positives %#x", w.Name, fp)
		}
	}
	return t, nil
}
