package experiments

import (
	"crypto/rand"
	"fmt"

	"lofat/internal/area"
	"lofat/internal/asm"
	"lofat/internal/attest"
	"lofat/internal/cflat"
	"lofat/internal/core"
	"lofat/internal/monitor"
	"lofat/internal/sig"
	"lofat/internal/workloads"
)

// cflatResult/cflatRun keep e1_e5.go decoupled from the cflat import.
type cflatResult = cflat.Result

func cflatRun(prog *asm.Program, input []uint32) (cflat.Result, error) {
	return cflat.NewRunner().Run(prog, input)
}

// E6Area reproduces §6.2: the synthesis results and the configuration
// trade-off ("Configuring these parameters to lower numbers reduces the
// memory requirements significantly").
func E6Area() (Table, error) {
	t := Table{
		ID:    "E6",
		Title: "FPGA area and fmax on XC7Z020 (§6.2 model)",
		Columns: []string{"config", "LUTs", "LUT %", "FFs", "FF %",
			"BRAM36 (loops+other)", "logic vs Pulpino", "fmax MHz"},
		Notes: []string{
			"paper @ defaults (ℓ=16, n=4, depth 3): 6% LUTs, 4% registers, 49 BRAMs (48 loop), ~20% logic overhead, 80 MHz.",
		},
	}
	cfgs := []struct {
		label string
		cfg   area.Config
	}{
		{"paper default ℓ=16 n=4 d=3", area.Config{}},
		{"ℓ=12 n=4 d=3", area.Config{BranchesPerPath: 12}},
		{"ℓ=8 n=4 d=3", area.Config{BranchesPerPath: 8}},
		{"ℓ=16 n=2 d=3", area.Config{IndirectBits: 2}},
		{"ℓ=16 n=4 d=1", area.Config{NestingDepth: 1}},
		{"ℓ=16 n=4 d=3 CAM loop mem", area.Config{UseCAMForLoopMem: true}},
	}
	for _, c := range cfgs {
		r := area.Estimate(c.cfg)
		t.Rows = append(t.Rows, []string{
			c.label, d(r.LUTs), f1(100 * r.UtilLUT), d(r.FFs), f1(100 * r.UtilFF),
			fmt.Sprintf("%d (%d+%d)", r.BRAMTotal, r.BRAMLoops, r.BRAMOther),
			f1(100*r.LogicOverheadVsPulpino) + "%", f1(r.FmaxMHz),
		})
	}
	return t, nil
}

// E7Attacks reproduces the security argument of §2/§6.3 as a detection
// matrix over the three run-time attack classes of Figure 1.
func E7Attacks() (Table, error) {
	t := Table{
		ID:    "E7",
		Title: "attack detection matrix (Figure 1 classes, §6.3)",
		Columns: []string{"attack", "class", "benign exit", "attacked exit",
			"verdict", "classified as", "A changed", "L changed"},
		Notes: []string{
			"class 2 (loop counter) leaves the hash A UNCHANGED — only the metadata L catches it, which is why LO-FAT reports L at all.",
		},
	}
	for _, atk := range workloads.Attacks() {
		prog, err := atk.Workload.Assemble()
		if err != nil {
			return t, err
		}
		keys, err := sig.GenerateKeyStore(rand.Reader)
		if err != nil {
			return t, err
		}
		prover := attest.NewProver(prog, core.Config{}, keys)
		verifier, err := attest.NewVerifier(prog, core.Config{}, keys.Public(), rand.Reader)
		if err != nil {
			return t, err
		}

		// Benign exchange.
		ch, err := verifier.NewChallenge(atk.Workload.Input)
		if err != nil {
			return t, err
		}
		benign, err := prover.Attest(ch)
		if err != nil {
			return t, err
		}
		if res := verifier.Verify(ch, benign); !res.Accepted {
			return t, fmt.Errorf("%s: benign run rejected: %v", atk.Name, res.Findings)
		}

		// Attacked exchange.
		prover.Adversary = atk.Build(prog)
		ch2, err := verifier.NewChallenge(atk.Workload.Input)
		if err != nil {
			return t, err
		}
		attacked, err := prover.Attest(ch2)
		if err != nil {
			return t, err
		}
		res := verifier.Verify(ch2, attacked)
		wantAccepted := atk.Expect == attest.ClassAccepted
		if res.Accepted != wantAccepted {
			return t, fmt.Errorf("%s: accepted=%v, want %v", atk.Name, res.Accepted, wantAccepted)
		}

		verdict := "DETECTED"
		if wantAccepted {
			verdict = "not detected (by design)"
		}
		hashChanged := "no"
		if attacked.Hash != benign.Hash {
			hashChanged = "yes"
		}
		lChanged := "no"
		if attest.MetadataSize(attacked.Loops) != attest.MetadataSize(benign.Loops) ||
			!sameLoopCounts(attacked.Loops, benign.Loops) {
			lChanged = "yes"
		}
		classLabel := fmt.Sprintf("class %d", atk.Class)
		if atk.Class == 0 {
			classLabel = "pure data (DOP)"
		}
		t.Rows = append(t.Rows, []string{
			atk.Name, classLabel,
			u(uint64(benign.ExitCode)), u(uint64(attacked.ExitCode)),
			verdict, res.Class.String(), hashChanged, lChanged,
		})
	}
	return t, nil
}

func sameLoopCounts(a, b []monitor.LoopRecord) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Iterations != b[i].Iterations {
			return false
		}
	}
	return true
}

// E8Indirect reproduces §5.2: n-bit re-encoding of indirect targets,
// 2^n−1 capacity, all-zero overflow code, and the 8×2^ℓ memory formula.
func E8Indirect() (Table, error) {
	t := Table{
		ID:    "E8",
		Title: "indirect-branch target re-encoding in loops (§5.2)",
		Columns: []string{"n (bits)", "CAM capacity", "targets seen",
			"targets tracked", "overflow hits", "loop mem bits (8·2^ℓ, ℓ=16)"},
		Notes: []string{
			"paper: 'we re-encode the addresses using a smaller number of n bits, allowing a maximum number of 2^n−1 possible targets for each loop. ... When a target address is encountered that exceeds the configured limit, we report this in the encoding to the V by an all-zero code.'",
		},
	}
	// A dispatch loop cycling through 6 distinct handler targets.
	src := `
	.data
table:
	.word h0, h1, h2, h3, h4, h5
	.text
main:
	li   s0, 12
loop:
	addi s0, s0, -1
	li   t0, 6
	remu t1, s0, t0
	slli t1, t1, 2
	la   t2, table
	add  t2, t2, t1
	lw   t3, 0(t2)
	jalr ra, 0(t3)
	bnez s0, loop
	li   a7, 93
	ecall
h0:	ret
h1:	ret
h2:	ret
h3:	ret
h4:	ret
h5:	ret
`
	for _, n := range []int{2, 3, 4} {
		cfg := core.Config{Monitor: monitor.Config{IndirectBits: n}}
		m, err := measureWorkloadWithConfig(workloads.Workload{Name: "indirect-sweep", Source: src}, cfg)
		if err != nil {
			return t, err
		}
		if len(m.Loops) == 0 {
			return t, fmt.Errorf("no loop detected in indirect sweep")
		}
		rec := m.Loops[0]
		t.Rows = append(t.Rows, []string{
			d(n), d(1<<uint(n) - 1), "7 (6 handlers + ret site)",
			d(len(rec.IndirectTargets)), u(rec.IndirectOverflows),
			u(8 * (1 << 16)),
		})
	}
	return t, nil
}

func measureWorkloadWithConfig(w workloads.Workload, cfg core.Config) (core.Measurement, error) {
	prog, err := w.Assemble()
	if err != nil {
		return core.Measurement{}, err
	}
	m, _, err := attest.Measure(prog, cfg, w.Input, 50_000_000)
	return m, err
}

// E9Protocol reproduces §6.3's protocol properties: authenticity,
// freshness, and tamper evidence.
func E9Protocol() (Table, error) {
	t := Table{
		ID:      "E9",
		Title:   "attestation protocol properties (Figure 2, §6.3)",
		Columns: []string{"scenario", "verdict", "classified as"},
		Notes: []string{
			"paper: 'If P's signing key has not been compromised, this signature guarantees the authenticity of the attestation, and the inclusion of the challenge nonce ensures freshness. Any tampering with the attestation messages can be detected by V.'",
		},
	}
	w := workloads.SyringePump()
	prog, err := w.Assemble()
	if err != nil {
		return t, err
	}
	keys, err := sig.GenerateKeyStore(rand.Reader)
	if err != nil {
		return t, err
	}
	p := attest.NewProver(prog, core.Config{}, keys)
	v, err := attest.NewVerifier(prog, core.Config{}, keys.Public(), rand.Reader)
	if err != nil {
		return t, err
	}

	add := func(name string, res attest.Result) {
		verdict := "rejected"
		if res.Accepted {
			verdict = "accepted"
		}
		t.Rows = append(t.Rows, []string{name, verdict, res.Class.String()})
	}

	// Honest.
	ch, err := v.NewChallenge(w.Input)
	if err != nil {
		return t, err
	}
	rep, err := p.Attest(ch)
	if err != nil {
		return t, err
	}
	add("honest exchange", v.Verify(ch, rep))

	// Replay against a fresh nonce.
	ch2, _ := v.NewChallenge(w.Input)
	add("replayed report (stale nonce)", v.Verify(ch2, rep))

	// Tampered measurement.
	ch3, _ := v.NewChallenge(w.Input)
	rep3, err := p.Attest(ch3)
	if err != nil {
		return t, err
	}
	rep3.Loops[0].Iterations += 3
	add("tampered loop counts", v.Verify(ch3, rep3))

	// Forged signature (wrong key).
	rogue, err := sig.GenerateKeyStore(rand.Reader)
	if err != nil {
		return t, err
	}
	ch4, _ := v.NewChallenge(w.Input)
	rep4, err := p.Attest(ch4)
	if err != nil {
		return t, err
	}
	rep4.Sig = rogue.Sign(attest.SignedPayload(rep4))
	add("report signed by rogue key", v.Verify(ch4, rep4))
	return t, nil
}

// E10Metadata reproduces §6.1's observation that |L| "depends on the
// number of loops executed, the number of different paths per loop, and
// the number of indirect branch targets encountered".
func E10Metadata() (Table, error) {
	t := Table{
		ID:      "E10",
		Title:   "auxiliary metadata size scaling (§6.1)",
		Columns: []string{"scenario", "loop records", "distinct paths", "indirect targets", "|L| bytes"},
	}
	scenarios := []struct {
		name  string
		w     workloads.Workload
		input []uint32
	}{
		{"pump: 1 bolus", workloads.SyringePump(), []uint32{0xC0FFEE, 1, 4}},
		{"pump: 3 boluses", workloads.SyringePump(), []uint32{0xC0FFEE, 3, 4, 5, 6}},
		{"pump: 6 boluses", workloads.SyringePump(), []uint32{0xC0FFEE, 6, 2, 3, 4, 5, 6, 7}},
		{"dispatch: 5 cmds", workloads.Dispatch(), []uint32{2, 1, 0, 2, 1, 99}},
		{"dispatch: 10 cmds", workloads.Dispatch(), []uint32{0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 99}},
		{"matmul (3-deep nest)", workloads.MatMul(), nil},
	}
	for _, s := range scenarios {
		w := s.w
		w.Input = s.input
		m, err := measureWorkload(w)
		if err != nil {
			return t, err
		}
		var paths, targets int
		for _, r := range m.Loops {
			paths += len(r.Paths)
			targets += len(r.IndirectTargets)
		}
		t.Rows = append(t.Rows, []string{
			s.name, d(len(m.Loops)), d(paths), d(targets),
			d(attest.MetadataSize(m.Loops)),
		})
	}
	return t, nil
}
