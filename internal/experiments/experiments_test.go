package experiments

import (
	"strings"
	"testing"
)

// Every experiment must run and produce a well-formed table.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tb, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			if tb.ID != e.ID {
				t.Errorf("table ID %q != experiment ID %q", tb.ID, e.ID)
			}
			if len(tb.Rows) == 0 {
				t.Fatal("empty table")
			}
			for i, r := range tb.Rows {
				if len(r) != len(tb.Columns) {
					t.Errorf("row %d has %d cells, want %d", i, len(r), len(tb.Columns))
				}
			}
			if !strings.Contains(tb.Format(), "| "+tb.Columns[0]) {
				t.Error("Format missing header")
			}
		})
	}
}

// E2 must contain the paper's exact Figure 4 encodings.
func TestE2MatchesPaper(t *testing.T) {
	tb, err := E2PathEncoding()
	if err != nil {
		t.Fatal(err)
	}
	s := tb.Format()
	for _, enc := range []string{"011", "0011"} {
		if !strings.Contains(s, "| "+enc+" |") {
			t.Errorf("E2 missing encoding %q:\n%s", enc, s)
		}
	}
}

// E3: LO-FAT column must be all-zero added cycles; C-FLAT all nonzero.
func TestE3ZeroVsLinear(t *testing.T) {
	tb, err := E3Overhead()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows {
		if r[3] != "0" {
			t.Errorf("%s: LO-FAT added cycles = %s, want 0", r[0], r[3])
		}
		if r[5] == "0" {
			t.Errorf("%s: C-FLAT added cycles = 0", r[0])
		}
	}
}

// E6 first row must be the paper's prototype numbers.
func TestE6PaperRow(t *testing.T) {
	tb, err := E6Area()
	if err != nil {
		t.Fatal(err)
	}
	r := tb.Rows[0]
	if r[5] != "49 (48+1)" {
		t.Errorf("BRAM cell = %q, want 49 (48+1)", r[5])
	}
	if r[7] != "80.0" {
		t.Errorf("fmax cell = %q, want 80.0", r[7])
	}
}

// E7 must show all three classes detected with the right labels.
func TestE7AllClassesDetected(t *testing.T) {
	tb, err := E7Attacks()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (three classes + DOP limitation)", len(tb.Rows))
	}
	wantClass := map[string]string{
		"auth-bypass":   "non-control-data-attack",
		"loop-counter":  "loop-counter-attack",
		"code-pointer":  "control-flow-attack",
		"dop-data-only": "accepted",
	}
	for _, r := range tb.Rows {
		if r[0] == "dop-data-only" {
			// The documented limitation: NOT detected, measurement
			// bit-identical.
			if r[4] == "DETECTED" {
				t.Error("pure-data attack reported as detected")
			}
			if r[6] != "no" || r[7] != "no" {
				t.Errorf("DOP attack changed the measurement: A=%s L=%s", r[6], r[7])
			}
		} else if r[4] != "DETECTED" {
			t.Errorf("%s not detected", r[0])
		}
		if r[5] != wantClass[r[0]] {
			t.Errorf("%s classified %q, want %q", r[0], r[5], wantClass[r[0]])
		}
		// The class-2 signature property: hash unchanged.
		if r[0] == "loop-counter" && r[6] != "no" {
			t.Errorf("loop-counter attack changed A; it must not")
		}
	}
}

// E9: honest accepted, all manipulations rejected.
func TestE9Outcomes(t *testing.T) {
	tb, err := E9Protocol()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range tb.Rows {
		want := "rejected"
		if i == 0 {
			want = "accepted"
		}
		if r[1] != want {
			t.Errorf("%s: verdict %q, want %q", r[0], r[1], want)
		}
	}
}

// E10: metadata size must grow monotonically over the pump scenarios.
func TestE10Monotone(t *testing.T) {
	tb, err := E10Metadata()
	if err != nil {
		t.Fatal(err)
	}
	prev := -1
	for _, r := range tb.Rows[:3] { // the three pump rows
		var size int
		if _, err := fmtSscan(r[4], &size); err != nil {
			t.Fatalf("bad size cell %q", r[4])
		}
		if size <= prev {
			t.Errorf("metadata size %d not growing (prev %d)", size, prev)
		}
		prev = size
	}
}

func fmtSscan(s string, v *int) (int, error) {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int(c-'0')
	}
	*v = n
	return n, nil
}
