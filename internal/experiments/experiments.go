// Package experiments regenerates every quantitative artifact of the
// paper's evaluation (§6) plus the design figures, as data tables (E1..E11): each
// Ei corresponds to a row of DESIGN.md's experiment index and is
// exercised by a benchmark in the repository root and printed by
// cmd/lofat-bench. EXPERIMENTS.md records paper-vs-measured for each.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one regenerated evaluation artifact.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Format renders the table as GitHub markdown.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	return b.String()
}

// Experiment couples an ID with its generator.
type Experiment struct {
	ID  string
	Run func() (Table, error)
}

// All lists every experiment in evaluation order.
func All() []Experiment {
	return []Experiment{
		{"E1", E1Capture},
		{"E2", E2PathEncoding},
		{"E3", E3Overhead},
		{"E4", E4Latency},
		{"E5", E5HashEngine},
		{"E6", E6Area},
		{"E7", E7Attacks},
		{"E8", E8Indirect},
		{"E9", E9Protocol},
		{"E10", E10Metadata},
		{"E11", E11Heuristic},
	}
}

// RunAll executes every experiment, failing fast.
func RunAll() ([]Table, error) {
	var out []Table
	for _, e := range All() {
		t, err := e.Run()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", e.ID, err)
		}
		out = append(out, t)
	}
	return out, nil
}

func u(v uint64) string   { return fmt.Sprintf("%d", v) }
func d(v int) string      { return fmt.Sprintf("%d", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
