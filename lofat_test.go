package lofat_test

import (
	"strings"
	"testing"

	"lofat"
)

const countdown = `
main:
	li   s0, 5
loop:
	addi s0, s0, -1
	bnez s0, loop
	li   a7, 93
	ecall
`

func TestBuildSourceAndAttest(t *testing.T) {
	sys, err := lofat.BuildSource(countdown, lofat.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.AttestOnce(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted || res.Class != lofat.ClassAccepted {
		t.Fatalf("honest attestation rejected: %v", res)
	}
}

func TestMeasureSource(t *testing.T) {
	m, err := lofat.MeasureSource(countdown, lofat.DeviceConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Loops) != 1 {
		t.Fatalf("loops = %d", len(m.Loops))
	}
	if m.Stats.ProcessorStallCycles != 0 {
		t.Error("stalls nonzero")
	}
}

func TestBuildWorkload(t *testing.T) {
	sys, w, err := lofat.BuildWorkload("syringe-pump", lofat.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.AttestOnce(w.Input)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("syringe pump rejected: %v %v", res, res.Findings)
	}
	if _, _, err := lofat.BuildWorkload("nope", lofat.Options{}); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestAdversaryDetectedThroughFacade(t *testing.T) {
	for _, atk := range lofat.Attacks() {
		sys, err := lofat.Build(mustAssemble(t, atk.Workload.Source), lofat.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sys.SetAdversary(atk.Build(sys.Program))
		res, err := sys.AttestOnce(atk.Workload.Input)
		if err != nil {
			t.Fatal(err)
		}
		wantAccepted := atk.Expect == lofat.ClassAccepted
		if res.Accepted != wantAccepted {
			t.Errorf("%s: accepted=%v, want %v", atk.Name, res.Accepted, wantAccepted)
		}
		if res.Class != atk.Expect {
			t.Errorf("%s classified %v, want %v", atk.Name, res.Class, atk.Expect)
		}
	}
}

func mustAssemble(t *testing.T, src string) *lofat.Program {
	t.Helper()
	p, err := lofat.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEstimateAreaFacade(t *testing.T) {
	r := lofat.EstimateArea(lofat.AreaConfig{})
	if r.BRAMTotal != 49 {
		t.Errorf("BRAM = %d, want 49", r.BRAMTotal)
	}
	if !strings.Contains(r.String(), "49 BRAM36") {
		t.Errorf("report string: %s", r)
	}
}

func TestRunCFLATFacade(t *testing.T) {
	prog := mustAssemble(t, countdown)
	res, err := lofat.RunCFLAT(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Overhead() <= 1 {
		t.Errorf("C-FLAT overhead = %.2f, want > 1", res.Overhead())
	}
}

func TestAssembleError(t *testing.T) {
	if _, err := lofat.BuildSource("bogus instruction", lofat.Options{}); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := lofat.MeasureSource("bogus", lofat.DeviceConfig{}, nil); err == nil {
		t.Error("bad source accepted")
	}
}
