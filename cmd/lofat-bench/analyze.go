package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// analyzeGateFloor is the minimum relative slowdown treated as a
// regression: below 10% the gate is pure noise on shared CI hardware.
const analyzeGateFloor = 0.10

// loadReport reads one -bench JSON document.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in report", path)
	}
	return &rep, nil
}

// relSpread estimates a benchmark's run-to-run noise from its own
// latency distribution: the p95/p50 spread. A shape whose p95 sits 30%
// above its median cannot distinguish a 15% mean shift from noise, so
// its regression gate widens to match. Baselines recorded at schema 1
// carry no percentiles and report zero spread (the 10% floor governs).
func relSpread(r BenchResult) float64 {
	if r.P50NsPerOp <= 0 || r.P95NsPerOp <= r.P50NsPerOp {
		return 0
	}
	return (r.P95NsPerOp - r.P50NsPerOp) / r.P50NsPerOp
}

// runAnalyze compares two -bench reports and fails (nonzero exit via
// the returned error) when any benchmark regressed beyond its
// noise-aware threshold: max(10%, the larger p95/p50 spread of the two
// runs). Benchmarks present in only one report are listed but never
// gate — a new benchmark is not a regression.
func runAnalyze(oldPath, newPath string) error {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return err
	}

	names := map[string]bool{}
	for n := range oldRep.Benchmarks {
		names[n] = true
	}
	for n := range newRep.Benchmarks {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	fmt.Printf("%-24s %14s %14s %8s %7s  %s\n", "benchmark", "old ns/op", "new ns/op", "delta", "gate", "verdict")
	var regressions []string
	for _, name := range sorted {
		o, haveOld := oldRep.Benchmarks[name]
		n, haveNew := newRep.Benchmarks[name]
		switch {
		case !haveOld:
			fmt.Printf("%-24s %14s %14.0f %8s %7s  new\n", name, "-", n.NsPerOp, "-", "-")
			continue
		case !haveNew:
			fmt.Printf("%-24s %14.0f %14s %8s %7s  removed\n", name, o.NsPerOp, "-", "-", "-")
			continue
		case o.NsPerOp <= 0:
			fmt.Printf("%-24s %14.0f %14.0f %8s %7s  unusable baseline\n", name, o.NsPerOp, n.NsPerOp, "-", "-")
			continue
		}
		delta := n.NsPerOp/o.NsPerOp - 1
		gate := math.Max(analyzeGateFloor, math.Max(relSpread(o), relSpread(n)))
		verdict := "ok"
		switch {
		case delta > gate:
			verdict = "REGRESSION"
			regressions = append(regressions, name)
		case delta < -gate:
			verdict = "improved"
		}
		fmt.Printf("%-24s %14.0f %14.0f %+7.1f%% %6.1f%%  %s\n",
			name, o.NsPerOp, n.NsPerOp, delta*100, gate*100, verdict)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond their noise gate: %v", len(regressions), regressions)
	}
	fmt.Println("no regressions beyond noise thresholds")
	return nil
}
