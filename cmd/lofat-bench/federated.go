package main

import (
	"crypto/rand"
	"fmt"
	"io"
	"net"
	"testing"

	"lofat/internal/attest"
	"lofat/internal/core"
	"lofat/internal/fed"
	"lofat/internal/fleet"
	"lofat/internal/sig"
	"lofat/internal/workloads"
)

// fedBenchDevices is the simulated fleet size for the federated sweep
// shapes — large enough that the sweep (not federation setup) dominates
// each timed op, small enough for the percentile sampling budget.
const fedBenchDevices = 24

// federation stands up a complete federated sweep fixture: a loopback
// TCP device fleet enrolled through a coordinator across nodeCount
// in-process verifier nodes. sweep runs one warm federated sweep.
type federation struct {
	sweep func() error
	close func()
}

func newFederation(nodeCount, replicas int) (*federation, error) {
	w := workloads.SyringePump()
	prog, err := w.Assemble()
	if err != nil {
		return nil, err
	}

	var cleanup []func()
	closeAll := func() {
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]()
		}
	}
	fail := func(err error) (*federation, error) {
		closeAll()
		return nil, err
	}

	coord := fed.NewCoordinator(fed.Config{Replicas: replicas})
	cleanup = append(cleanup, coord.Close)
	for i := 0; i < nodeCount; i++ {
		n, err := fed.NewNode(fed.NodeConfig{
			ID:    fed.NodeID(fmt.Sprintf("node-%d", i)),
			Fleet: fleet.Config{},
		})
		if err != nil {
			return fail(err)
		}
		cleanup = append(cleanup, func() { n.Close() })
		dial := func() (io.ReadWriteCloser, error) {
			client, server := net.Pipe()
			go func() {
				defer server.Close()
				_ = n.ServeConn(server)
			}()
			return client, nil
		}
		if _, err := coord.Join(n.ID(), dial); err != nil {
			return fail(err)
		}
	}
	progID, err := coord.RegisterProgram(prog, core.Config{}, [][]uint32{w.Input})
	if err != nil {
		return fail(err)
	}
	for i := 0; i < fedBenchDevices; i++ {
		keys, err := sig.GenerateKeyStore(rand.Reader)
		if err != nil {
			return fail(err)
		}
		reg := attest.NewRegistry()
		reg.Register(attest.NewProver(prog, core.Config{}, keys))
		srv := attest.NewServer(reg)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return fail(err)
		}
		cleanup = append(cleanup, func() { srv.Close() })
		id := fleet.DeviceID(fmt.Sprintf("dev-%03d", i))
		if err := coord.Enroll(id, progID, keys.Public(), addr.String()); err != nil {
			return fail(err)
		}
	}

	sweep := func() error {
		v, err := coord.Sweep(progID, w.Input, false)
		if err != nil {
			return err
		}
		if v.Accepted != fedBenchDevices || !v.Healthy {
			return fmt.Errorf("federated sweep verdict: %s", v)
		}
		return nil
	}
	// Warm sweep: prime every node's measurement cache so the timed ops
	// measure steady-state verification, not the one-time golden run.
	if err := sweep(); err != nil {
		return fail(err)
	}
	return &federation{sweep: sweep, close: closeAll}, nil
}

// benchFederated times full federated sweeps at a given node count
// and replication factor (replicas > 1 adds the warm-standby hand-off
// and post-sweep anti-entropy reconciliation to each op).
func benchFederated(nodeCount, replicas int) func(b *testing.B) {
	return func(b *testing.B) {
		f, err := newFederation(nodeCount, replicas)
		if err != nil {
			b.Fatal(err)
		}
		defer f.close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := f.sweep(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func setupFederatedOp(nodeCount, replicas int) func() (func() error, error) {
	return func() (func() error, error) {
		f, err := newFederation(nodeCount, replicas)
		if err != nil {
			return nil, err
		}
		// The fixture leaks until process exit; the sampling pass has no
		// teardown hook, and one federation per shape is cheap.
		return f.sweep, nil
	}
}
