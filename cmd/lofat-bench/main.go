// Command lofat-bench regenerates the paper's evaluation artifacts
// (tables E1..E11 of DESIGN.md's experiment index) and prints them as
// markdown. Use -id to select experiments and -o to write a file.
//
// Usage:
//
//	lofat-bench            # all experiments to stdout
//	lofat-bench -id E3,E7  # just the overhead and attack tables
//	lofat-bench -o out.md  # write to a file
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lofat/internal/experiments"
)

func main() {
	ids := flag.String("id", "", "comma-separated experiment IDs (default: all)")
	out := flag.String("o", "", "output file (default: stdout)")
	flag.Parse()

	want := map[string]bool{}
	if *ids != "" {
		for _, id := range strings.Split(*ids, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}

	var b strings.Builder
	for _, e := range experiments.All() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		t, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "lofat-bench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		b.WriteString(t.Format())
		b.WriteString("\n")
	}

	if *out == "" {
		fmt.Print(b.String())
		return
	}
	if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "lofat-bench: %v\n", err)
		os.Exit(1)
	}
}
