// Command lofat-bench regenerates the paper's evaluation artifacts
// (tables E1..E11 of DESIGN.md's experiment index) and prints them as
// markdown. Use -id to select experiments and -o to write a file.
//
// With -bench it instead times the hot capture pipeline (the E1/E2/E3/E5
// shapes plus a streamed golden run) via testing.Benchmark and emits the
// results as JSON, so perf regressions are comparable across commits:
//
//	lofat-bench                                  # all experiment tables
//	lofat-bench -id E3,E7                        # selected tables
//	lofat-bench -bench -json run.json            # timed run to JSON
//	lofat-bench -bench -baseline old.json \
//	            -json BENCH_PR3.json             # + per-bench speedups
//	lofat-bench -bench -cpuprofile cpu.pprof     # profile the hot path
//	lofat-bench -analyze old.json new.json       # regression diff with
//	                                             # noise-aware thresholds;
//	                                             # nonzero exit on regression
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"testing"
	"time"

	"lofat/internal/attest"
	"lofat/internal/cflat"
	"lofat/internal/core"
	"lofat/internal/experiments"
	"lofat/internal/filter"
	"lofat/internal/hashengine"
	"lofat/internal/monitor"
	"lofat/internal/obs"
	"lofat/internal/stream"
	"lofat/internal/workloads"
)

func pushOp(entry, exit uint32) filter.Op {
	return filter.Op{Kind: filter.OpLoopPush, Entry: entry, Exit: exit}
}

func condOp(src, dest uint32, taken bool) filter.Op {
	return filter.Op{Kind: filter.OpLoopEvent, Sym: filter.SymCond, Taken: taken,
		Pair: hashengine.Pair{Src: src, Dest: dest}}
}

func jumpOp(src, dest uint32) filter.Op {
	return filter.Op{Kind: filter.OpLoopEvent, Sym: filter.SymJump,
		Pair: hashengine.Pair{Src: src, Dest: dest}}
}

func iterEnd() filter.Op { return filter.Op{Kind: filter.OpIterEnd} }

// BenchResult is one timed benchmark in the JSON report. The percentile
// fields come from a separate per-op sampling pass (testing.Benchmark
// only reports the mean), so they are absent when a shape could not be
// sampled — and absent from baselines recorded at schema 1.
type BenchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
	P50NsPerOp  float64 `json:"p50_ns_per_op,omitempty"`
	P95NsPerOp  float64 `json:"p95_ns_per_op,omitempty"`
	P99NsPerOp  float64 `json:"p99_ns_per_op,omitempty"`
}

// reportSchema versions the -bench JSON document: 1 was means only,
// 2 added the schema field itself and per-op latency percentiles.
const reportSchema = 2

// Report is the -bench JSON document. When a -baseline file is given its
// benchmarks are embedded alongside the current run with the computed
// speedup factors, so the file is a self-contained before/after record.
type Report struct {
	Schema     int                    `json:"schema"`
	Benchmarks map[string]BenchResult `json:"benchmarks"`
	Baseline   map[string]BenchResult `json:"baseline,omitempty"`
	Speedup    map[string]float64     `json:"speedup,omitempty"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "lofat-bench: %v\n", err)
		os.Exit(1)
	}
}

// run carries the whole tool lifecycle so profile teardown (deferred
// below) flushes even on error paths — os.Exit happens only in main.
func run() error {
	ids := flag.String("id", "", "comma-separated experiment IDs (default: all)")
	out := flag.String("o", "", "output file (default: stdout)")
	bench := flag.Bool("bench", false, "time the capture hot path instead of printing experiment tables")
	analyze := flag.Bool("analyze", false, "compare two -bench JSON reports: lofat-bench -analyze old.json new.json (nonzero exit on regression)")
	baseline := flag.String("baseline", "", "prior -bench JSON to compute per-benchmark speedups against")
	jsonOut := flag.String("json", "", "write the -bench JSON report to this file (default: stdout)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	var err error
	if *analyze {
		if flag.NArg() != 2 {
			return fmt.Errorf("-analyze takes exactly two arguments: old.json new.json")
		}
		err = runAnalyze(flag.Arg(0), flag.Arg(1))
	} else if *bench {
		err = runBench(*baseline, *jsonOut)
	} else {
		err = runExperiments(*ids, *out)
	}
	if err != nil {
		return err
	}

	if *memProfile != "" {
		f, ferr := os.Create(*memProfile)
		if ferr != nil {
			return fmt.Errorf("memprofile: %w", ferr)
		}
		defer f.Close()
		runtime.GC()
		if werr := pprof.WriteHeapProfile(f); werr != nil {
			return fmt.Errorf("memprofile: %w", werr)
		}
	}
	return nil
}

func runExperiments(ids, out string) error {
	want := map[string]bool{}
	if ids != "" {
		for _, id := range strings.Split(ids, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}

	var b strings.Builder
	for _, e := range experiments.All() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		t, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		b.WriteString(t.Format())
		b.WriteString("\n")
	}

	if out == "" {
		fmt.Print(b.String())
		return nil
	}
	return os.WriteFile(out, []byte(b.String()), 0o644)
}

// benchShape pairs a testing.Benchmark function (mean / allocs) with a
// single-op setup for the percentile sampling pass: Setup runs once and
// returns a closure executing exactly one operation.
type benchShape struct {
	Name  string
	Fn    func(b *testing.B)
	Setup func() (func() error, error)
}

// hotPathBenchmarks are the timed shapes: full attested captures (the
// fleet/stream golden-run bottleneck), the monitor and hash-engine
// microbenchmarks, and the C-FLAT software baseline.
func hotPathBenchmarks() []benchShape {
	return []benchShape{
		{"E1_Capture", benchCapture, setupCaptureOp},
		{"E2_PathEncoding", benchPathEncoding, setupPathEncodingOp},
		{"E3_CFLAT", benchCFLAT, setupCFLATOp},
		{"E5_HashEngine", benchHashEngine, setupHashEngineOp},
		{"StreamGolden", benchStreamGolden, setupStreamGoldenOp},
		{"FederatedSweep_1node", benchFederated(1, 1), setupFederatedOp(1, 1)},
		{"FederatedSweep_3nodes", benchFederated(3, 1), setupFederatedOp(3, 1)},
		{"FederatedSweep_3nodes_R2", benchFederated(3, 2), setupFederatedOp(3, 2)},
	}
}

// samplePercentiles times single operations into a log-bucketed
// histogram until the budget runs out — at most sampleBudget wall time
// or maxSamples operations — and returns the p50/p95/p99 estimates.
const (
	sampleBudget = 250 * time.Millisecond
	maxSamples   = 2048
)

func samplePercentiles(setup func() (func() error, error)) (p50, p95, p99 float64, err error) {
	op, err := setup()
	if err != nil {
		return 0, 0, 0, err
	}
	if err := op(); err != nil { // warm caches and one-time lazy init
		return 0, 0, 0, err
	}
	var h obs.Histogram
	deadline := time.Now().Add(sampleBudget)
	for i := 0; i < maxSamples && !time.Now().After(deadline); i++ {
		start := time.Now()
		if err := op(); err != nil {
			return 0, 0, 0, err
		}
		h.ObserveSince(start)
	}
	s := h.Snapshot()
	return s.Quantile(0.5), s.Quantile(0.95), s.Quantile(0.99), nil
}

func runBench(baselinePath, jsonOut string) error {
	rep := Report{Schema: reportSchema, Benchmarks: map[string]BenchResult{}}
	for _, bm := range hotPathBenchmarks() {
		r := testing.Benchmark(bm.Fn)
		res := BenchResult{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
		p50, p95, p99, err := samplePercentiles(bm.Setup)
		if err != nil {
			return fmt.Errorf("%s: sample: %w", bm.Name, err)
		}
		res.P50NsPerOp, res.P95NsPerOp, res.P99NsPerOp = p50, p95, p99
		rep.Benchmarks[bm.Name] = res
		fmt.Fprintf(os.Stderr, "%-18s %12.0f ns/op %8d allocs/op  p50/p95/p99 %.0f/%.0f/%.0f ns\n",
			bm.Name, res.NsPerOp, r.AllocsPerOp(), p50, p95, p99)
	}

	if baselinePath != "" {
		data, err := os.ReadFile(baselinePath)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		var base Report
		if err := json.Unmarshal(data, &base); err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		rep.Baseline = base.Benchmarks
		rep.Speedup = map[string]float64{}
		names := make([]string, 0, len(rep.Benchmarks))
		for name := range rep.Benchmarks {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			b, ok := base.Benchmarks[name]
			if !ok || rep.Benchmarks[name].NsPerOp == 0 {
				continue
			}
			s := b.NsPerOp / rep.Benchmarks[name].NsPerOp
			rep.Speedup[name] = s
			fmt.Fprintf(os.Stderr, "%-18s %6.2fx speedup (%.0f -> %.0f ns/op)\n",
				name, s, b.NsPerOp, rep.Benchmarks[name].NsPerOp)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if jsonOut == "" {
		_, werr := os.Stdout.Write(data)
		return werr
	}
	return os.WriteFile(jsonOut, data, 0o644)
}

func benchCapture(b *testing.B) {
	w := workloads.SyringePump()
	prog, err := w.Assemble()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := attest.Measure(prog, core.Config{}, w.Input, 50_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPathEncoding(b *testing.B) {
	m := monitor.New(monitor.Config{}, func(hashengine.Pair) {})
	m.Apply(pushOp(0x100, 0x140))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Apply(condOp(0x100, 0x104, false))
		m.Apply(condOp(0x104, 0x108, false))
		m.Apply(jumpOp(0x118, 0x124))
		m.Apply(jumpOp(0x130, 0x100))
		m.Apply(iterEnd())
	}
}

func benchCFLAT(b *testing.B) {
	w := workloads.CRC32()
	prog, err := w.Assemble()
	if err != nil {
		b.Fatal(err)
	}
	r := cflat.NewRunner()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(prog, w.Input); err != nil {
			b.Fatal(err)
		}
	}
}

func benchHashEngine(b *testing.B) {
	buf := make([]byte, hashengine.Rate)
	var s hashengine.Sponge
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Write(buf)
	}
}

func benchStreamGolden(b *testing.B) {
	w := workloads.SyringePump()
	prog, err := w.Assemble()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := stream.MeasureStream(prog, core.Config{}, w.Input, stream.DefaultSegmentEvents, 50_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// The setup*Op functions mirror the benchmarks above one operation at a
// time, for the percentile sampling pass.

func setupCaptureOp() (func() error, error) {
	w := workloads.SyringePump()
	prog, err := w.Assemble()
	if err != nil {
		return nil, err
	}
	return func() error {
		_, _, err := attest.Measure(prog, core.Config{}, w.Input, 50_000_000)
		return err
	}, nil
}

func setupPathEncodingOp() (func() error, error) {
	m := monitor.New(monitor.Config{}, func(hashengine.Pair) {})
	m.Apply(pushOp(0x100, 0x140))
	return func() error {
		m.Apply(condOp(0x100, 0x104, false))
		m.Apply(condOp(0x104, 0x108, false))
		m.Apply(jumpOp(0x118, 0x124))
		m.Apply(jumpOp(0x130, 0x100))
		m.Apply(iterEnd())
		return nil
	}, nil
}

func setupCFLATOp() (func() error, error) {
	w := workloads.CRC32()
	prog, err := w.Assemble()
	if err != nil {
		return nil, err
	}
	r := cflat.NewRunner()
	return func() error {
		_, err := r.Run(prog, w.Input)
		return err
	}, nil
}

func setupHashEngineOp() (func() error, error) {
	buf := make([]byte, hashengine.Rate)
	var s hashengine.Sponge
	return func() error {
		s.Write(buf)
		return nil
	}, nil
}

func setupStreamGoldenOp() (func() error, error) {
	w := workloads.SyringePump()
	prog, err := w.Assemble()
	if err != nil {
		return nil, err
	}
	return func() error {
		_, _, err := stream.MeasureStream(prog, core.Config{}, w.Input, stream.DefaultSegmentEvents, 50_000_000)
		return err
	}, nil
}
