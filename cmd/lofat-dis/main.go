// Command lofat-dis is the verifier-side static analysis tool: it
// disassembles a program, prints its basic blocks and CFG edges, the
// loops the LO-FAT hardware heuristic will detect (§5.1), and the
// cross-validation of that heuristic against dominance-based natural
// loops.
//
// Usage:
//
//	lofat-dis -w syringe-pump
//	lofat-dis -f prog.s
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"

	"lofat"
	"lofat/internal/cfg"
	"lofat/internal/workloads"
)

func main() {
	name := flag.String("w", "", "built-in workload name")
	file := flag.String("f", "", "assembly source file")
	flag.Parse()

	var prog *lofat.Program
	var err error
	switch {
	case *name != "":
		w, ok := workloads.ByName(*name)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q", *name))
		}
		prog, err = w.Assemble()
	case *file != "":
		var src []byte
		src, err = os.ReadFile(*file)
		if err == nil {
			prog, err = lofat.Assemble(string(src))
		}
	default:
		err = fmt.Errorf("need -w <workload> or -f <file>")
	}
	if err != nil {
		fatal(err)
	}

	words := make([]uint32, 0, len(prog.Data)/4)
	for i := 0; i+4 <= len(prog.Data); i += 4 {
		words = append(words, binary.LittleEndian.Uint32(prog.Data[i:]))
	}
	g, err := cfg.Build(prog.Text, prog.TextBase, words)
	if err != nil {
		fatal(err)
	}

	fmt.Print(g.Dump())

	entry := prog.TextBase
	if m, ok := prog.Entry("main"); ok {
		entry = m
	}
	fmt.Println("\nnatural loops (dominance analysis):")
	for _, nl := range g.NaturalLoops(entry) {
		fmt.Printf("  header %#x, %d back-edge(s), %d blocks in body\n",
			nl.Header, len(nl.BackEdges), len(nl.Body))
	}
	fp, missed := g.HeuristicVsNatural(entry)
	fmt.Printf("\nheuristic vs natural: %d false positive(s) %#x, %d missed header(s) %#x\n",
		len(fp), fp, len(missed), missed)

	// Valid path sets for innermost loops without indirect transfers:
	// the offline "other encodings are invalid" check of §5.1.
	fmt.Println("\nvalid path encodings (innermost loops, direct branches only):")
	for _, l := range g.Loops() {
		if !g.IsInnermost(l) {
			continue
		}
		paths, err := g.EnumeratePaths(l, cfg.EnumerateOptions{})
		if err != nil {
			fmt.Printf("  loop %#x: %v\n", l.Entry, err)
			continue
		}
		fmt.Printf("  loop %#x:", l.Entry)
		for _, p := range paths {
			fmt.Printf(" %s", p)
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "lofat-dis: %v\n", err)
	os.Exit(1)
}
