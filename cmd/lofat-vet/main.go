// Command lofat-vet runs the LO-FAT project-invariant analyzer suite
// (internal/lint) over the packages matched by its arguments.
//
// Usage:
//
//	go run ./cmd/lofat-vet ./...
//	go run ./cmd/lofat-vet -json ./...
//
// Exit status: 0 when clean, 1 when any diagnostic is reported, 2 when
// loading or type-checking fails outright. In -json mode the output is
// a single object with "diagnostics" and "suppressions" arrays — the
// latter lists every //lofat:ignore and sanctioning //lofat:rawconn /
// //lofat:locked directive in effect, so exceptions are auditable in
// CI artifacts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"lofat/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON (diagnostics + suppressions)")
	dir := flag.String("dir", ".", "directory to resolve package patterns from")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lofat-vet [-json] [-dir DIR] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	suite, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lofat-vet: %v\n", err)
		os.Exit(2)
	}
	res := suite.Run()

	if *jsonOut {
		// A clean run still emits well-formed arrays, not nulls.
		if res.Diagnostics == nil {
			res.Diagnostics = []lint.Diagnostic{}
		}
		if res.Suppressions == nil {
			res.Suppressions = []lint.Suppression{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "lofat-vet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range res.Diagnostics {
			fmt.Println(d)
		}
		if n := len(res.Suppressions); n > 0 {
			fmt.Fprintf(os.Stderr, "lofat-vet: %d audited suppression(s); run with -json to list them\n", n)
		}
	}

	if len(res.Diagnostics) > 0 {
		os.Exit(1)
	}
}
