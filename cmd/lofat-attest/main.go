// Command lofat-attest demonstrates the Figure 2 challenge-response
// protocol over TCP: in-process demo, or real two-process prover/verifier
// with a shared provisioning seed standing in for device enrolment.
//
// Usage:
//
//	lofat-attest -demo                           # both ends in-process
//	lofat-attest -demo -attack loop-counter     # inject an attack
//
//	# two processes (shared -seed models enrolment):
//	lofat-attest -serve 127.0.0.1:9000 -seed 42
//	lofat-attest -verify 127.0.0.1:9000 -seed 42 -w syringe-pump
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"io"
	"net"
	"os"

	"lofat"
	"lofat/internal/attest"
	"lofat/internal/hashengine"
	"lofat/internal/sig"
	"lofat/internal/workloads"
)

func main() {
	demo := flag.Bool("demo", false, "run prover and verifier in-process over TCP")
	serveAddr := flag.String("serve", "", "serve attestations for all workloads on this address")
	verifyAddr := flag.String("verify", "", "request an attestation from a server at this address")
	workload := flag.String("w", "syringe-pump", "workload to attest")
	attack := flag.String("attack", "", "inject an attack: auth-bypass, loop-counter, code-pointer")
	rounds := flag.Int("rounds", 1, "attestation rounds")
	seed := flag.Int64("seed", 0, "provisioning seed shared between -serve and -verify")
	flag.Parse()

	var err error
	switch {
	case *serveAddr != "":
		err = runServer(*serveAddr, *seed, *attack)
	case *verifyAddr != "":
		err = runClient(*verifyAddr, *seed, *workload, *rounds)
	default:
		if !*demo {
			// Default to the demo so `lofat-attest` alone does
			// something useful.
			*demo = true
		}
		err = runDemo(*workload, *attack, *rounds)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "lofat-attest: %v\n", err)
		os.Exit(1)
	}
}

// drbg expands a seed into a deterministic byte stream (SHAKE-style
// counter construction over our SHA-3), modelling factory provisioning
// where prover and verifier share device credentials.
type drbg struct {
	seed [8]byte
	ctr  uint64
	buf  []byte
}

func newDRBG(seed int64) *drbg {
	d := &drbg{}
	for i := 0; i < 8; i++ {
		d.seed[i] = byte(seed >> (8 * i))
	}
	return d
}

func (d *drbg) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		if len(d.buf) == 0 {
			block := make([]byte, 16)
			copy(block, d.seed[:])
			for i := 0; i < 8; i++ {
				block[8+i] = byte(d.ctr >> (8 * i))
			}
			d.ctr++
			sum := hashengine.Sum512(block)
			d.buf = sum[:]
		}
		c := copy(p[n:], d.buf)
		d.buf = d.buf[c:]
		n += c
	}
	return n, nil
}

// deviceConfig builds the device configuration a workload expects:
// paper defaults, plus the workload's interrupt schedule when it is
// interrupt-driven (pump-isr). Prover and verifier must derive it the
// same way or the expected measurement diverges.
func deviceConfig(w workloads.Workload, prog *lofat.Program) (lofat.DeviceConfig, error) {
	var cfg lofat.DeviceConfig
	sched, err := w.Schedule(prog)
	if err != nil {
		return cfg, err
	}
	cfg.IRQ = sched
	return cfg, nil
}

func provision(seed int64) (io.Reader, error) {
	if seed == 0 {
		return rand.Reader, nil
	}
	return newDRBG(seed), nil
}

func runServer(addr string, seed int64, attackName string) error {
	entropy, err := provision(seed)
	if err != nil {
		return err
	}
	keys, err := sig.GenerateKeyStore(entropy)
	if err != nil {
		return err
	}
	reg := attest.NewRegistry()
	for _, w := range workloads.All2() {
		prog, err := w.Assemble()
		if err != nil {
			return err
		}
		devCfg, err := deviceConfig(w, prog)
		if err != nil {
			return err
		}
		p := attest.NewProver(prog, devCfg, keys)
		if attackName != "" {
			if atk, ok := workloads.AttackByName(attackName); ok && atk.Workload.Name == w.Name {
				p.Adversary = atk.Build(prog)
				fmt.Printf("attack %q armed on %s\n", attackName, w.Name)
			}
		}
		reg.Register(p)
	}
	srv := attest.NewServer(reg)
	bound, err := srv.Listen(addr)
	if err != nil {
		return err
	}
	fmt.Printf("attestation server on %s, %d programs\n", bound, reg.Len())
	select {} // serve forever
}

func runClient(addr string, seed int64, workload string, rounds int) error {
	w, ok := workloads.ByName(workload)
	if !ok {
		return fmt.Errorf("unknown workload %q", workload)
	}
	prog, err := w.Assemble()
	if err != nil {
		return err
	}
	entropy, err := provision(seed)
	if err != nil {
		return err
	}
	keys, err := sig.GenerateKeyStore(entropy) // same seed => same public key
	if err != nil {
		return err
	}
	devCfg, err := deviceConfig(w, prog)
	if err != nil {
		return err
	}
	v, err := attest.NewVerifier(prog, devCfg, keys.Public(), rand.Reader)
	if err != nil {
		return err
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	for i := 0; i < rounds; i++ {
		res, err := attest.RequestAttestation(conn, v, w.Input)
		if err != nil {
			return err
		}
		fmt.Printf("round %d: %v\n", i+1, res)
		for _, f := range res.Findings {
			fmt.Printf("  finding: %s\n", f)
		}
	}
	return nil
}

func runDemo(workload, attackName string, rounds int) error {
	w, ok := workloads.ByName(workload)
	var prog *lofat.Program
	var err error
	var adv lofat.Adversary
	var expect lofat.Classification = lofat.ClassAccepted

	if attackName != "" {
		atk, okA := workloads.AttackByName(attackName)
		if !okA {
			return fmt.Errorf("unknown attack %q", attackName)
		}
		w, ok = atk.Workload, true
		prog, err = w.Assemble()
		if err != nil {
			return err
		}
		adv = atk.Build(prog)
		expect = atk.Expect
		fmt.Printf("injecting attack %q (class %d): %s\n", atk.Name, atk.Class, atk.Description)
	} else {
		if !ok {
			return fmt.Errorf("unknown workload %q", workload)
		}
		prog, err = w.Assemble()
		if err != nil {
			return err
		}
	}

	keys, err := sig.GenerateKeyStore(rand.Reader)
	if err != nil {
		return err
	}
	devCfg, err := deviceConfig(w, prog)
	if err != nil {
		return err
	}
	prover := attest.NewProver(prog, devCfg, keys)
	prover.Adversary = adv
	verifier, err := attest.NewVerifier(prog, devCfg, keys.Public(), rand.Reader)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("prover listening on %s, program %v\n", ln.Addr(), prover.ProgramID())

	done := make(chan error, 1)
	go func() {
		for i := 0; i < rounds; i++ {
			conn, err := ln.Accept()
			if err != nil {
				done <- err
				return
			}
			err = attest.ServeProver(conn, prover)
			conn.Close()
			if err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	for i := 0; i < rounds; i++ {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return err
		}
		res, err := attest.RequestAttestation(conn, verifier, w.Input)
		conn.Close()
		if err != nil {
			return err
		}
		fmt.Printf("round %d: %v\n", i+1, res)
		for _, f := range res.Findings {
			fmt.Printf("  finding: %s\n", f)
		}
		if attackName != "" && res.Class != expect {
			return fmt.Errorf("expected classification %v, got %v", expect, res.Class)
		}
	}
	return <-done
}
