// Command lofat-run executes a workload (or an assembly file) on the
// simulated Pulpino-class core with the LO-FAT device attached and
// prints the resulting measurement: the cumulative hash A, the loop
// metadata L, and the device statistics of §6.1.
//
// Usage:
//
//	lofat-run -w syringe-pump                 # built-in workload
//	lofat-run -w dispatch -input 2,1,0,99     # custom input words
//	lofat-run -f prog.s -input 5              # assemble and run a file
//	lofat-run -list                           # list built-in workloads
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"lofat"
	"lofat/internal/core"
	"lofat/internal/cpu"
	"lofat/internal/isa"
	"lofat/internal/trace"
)

func main() {
	name := flag.String("w", "", "built-in workload name")
	file := flag.String("f", "", "assembly source file")
	inputStr := flag.String("input", "", "comma-separated input words (decimal or 0x hex)")
	list := flag.Bool("list", false, "list built-in workloads")
	traceFlag := flag.Bool("trace", false, "print the retired control-flow event stream")
	region := flag.String("region", "", "attest only label range START,END (function-granular mode)")
	flag.Parse()

	if *list {
		for _, w := range lofat.Workloads() {
			fmt.Printf("%-16s %s\n", w.Name, w.Description)
		}
		return
	}

	input, err := parseInput(*inputStr)
	if err != nil {
		fatal(err)
	}

	var prog *lofat.Program
	switch {
	case *name != "":
		sys, w, err := lofat.BuildWorkload(*name, lofat.Options{})
		if err != nil {
			fatal(err)
		}
		prog = sys.Program
		if input == nil {
			input = w.Input
		}
	case *file != "":
		src, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		prog, err = lofat.Assemble(string(src))
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("need -w <workload> or -f <file>; see -list"))
	}

	if *traceFlag {
		if err := dumpTrace(prog, input); err != nil {
			fatal(err)
		}
	}

	devCfg := lofat.DeviceConfig{}
	if *region != "" {
		r, err := parseRegion(prog, *region)
		if err != nil {
			fatal(err)
		}
		devCfg.Region = r
		fmt.Printf("attested region: [%#x, %#x)\n", r.Start, r.End)
	}

	m, err := lofat.Measure(prog, devCfg, input)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("measurement hash A: %x\n\n", m.Hash)
	fmt.Printf("loop metadata L (%d records, %d bytes encoded):\n",
		len(m.Loops), lofat.MetadataSize(m.Loops))
	for i, r := range m.Loops {
		fmt.Printf("  %2d: %s\n", i, r)
	}
	st := m.Stats
	fmt.Printf(`
device statistics:
  control-flow events     %d
  in-loop events          %d
  hashed pairs            %d
  deduplicated pairs      %d
  new / repeated paths    %d / %d
  loops detected / exits  %d / %d
  processor stall cycles  %d
  max device lag cycles   %d
  engine dropped pairs    %d
`,
		st.ControlFlowEvents, st.LoopEvents, st.HashedPairs, st.DedupedPairs,
		st.NewPaths, st.RepeatedPaths, st.LoopsDetected, st.LoopExits,
		st.ProcessorStallCycles, st.MaxLagCycles, st.Engine.Dropped)
}

// dumpTrace runs the program once and prints every control-flow event
// as the branch filter sees it — the ModelSim-style debugging view.
func dumpTrace(prog *lofat.Program, input []uint32) error {
	mach, err := cpu.Load(prog, cpu.LoadOptions{})
	if err != nil {
		return err
	}
	mach.CPU.Input = input
	fmt.Println("cycle      pc        kind          taken  ->dest     linking")
	mach.CPU.Trace = trace.SinkFunc(func(e trace.Event) {
		if e.Kind == isa.KindNone {
			return
		}
		fmt.Printf("%-10d %#08x  %-12s  %-5v  %#08x  %v\n",
			e.Cycle, e.PC, e.Kind, e.Taken, e.NextPC, e.Linking)
	})
	if err := mach.CPU.Run(50_000_000); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

// parseRegion resolves "startLabel,endLabel" (or hex addresses) into an
// attested code range.
func parseRegion(prog *lofat.Program, s string) (core.Region, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return core.Region{}, fmt.Errorf("region wants START,END")
	}
	resolve := func(name string) (uint32, error) {
		if a, ok := prog.Labels[strings.TrimSpace(name)]; ok {
			return a, nil
		}
		v, err := strconv.ParseUint(strings.TrimSpace(name), 0, 32)
		if err != nil {
			return 0, fmt.Errorf("region bound %q: not a label or address", name)
		}
		return uint32(v), nil
	}
	start, err := resolve(parts[0])
	if err != nil {
		return core.Region{}, err
	}
	end, err := resolve(parts[1])
	if err != nil {
		return core.Region{}, err
	}
	if end <= start {
		return core.Region{}, fmt.Errorf("region end %#x <= start %#x", end, start)
	}
	return core.Region{Start: start, End: end}, nil
}

func parseInput(s string) ([]uint32, error) {
	if s == "" {
		return nil, nil
	}
	var out []uint32
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 0, 32)
		if err != nil {
			return nil, fmt.Errorf("bad input word %q: %v", part, err)
		}
		out = append(out, uint32(v))
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "lofat-run: %v\n", err)
	os.Exit(1)
}
