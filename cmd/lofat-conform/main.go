// Command lofat-conform runs the adversarial conformance harness: a
// seed-reproducible corpus of generated programs, each mutated into
// every attack class of the paper's Figure 1 taxonomy and verified
// over every delivery path (in-process direct, streamed sessions,
// fleet sweeps over in-memory pipes). Any misclassification or
// cross-path disagreement fails the run and prints a one-line repro
// recipe; feeding that recipe back to this command replays exactly the
// failing scenario.
//
// Usage:
//
//	lofat-conform [-seeds SPEC] [-isr] [-path direct,stream,fleet]
//	              [-mutations LIST] [-segment-events N] [-fleet-latency US]
//	              [-workers N] [-json] [-v]
//	lofat-conform -budget DUR [-soak-state FILE] [-soak-window N] [flags...]
//
// The -seeds SPEC is a comma list of seeds and half-open ranges, e.g.
// "0:200" or "7,42,100:110". A failing CI run echoes recipes like
//
//	lofat-conform -seeds 42 -mutations cfg-splice
//
// With -isr the corpus switches to interrupt-driven firmware: every
// generated program carries an interrupt handler, each golden run
// executes under a seed-derived deterministic interrupt schedule, and
// the isr-hijack / interrupt-storm mutation classes become applicable.
//
// A positive -budget selects SOAK mode: -seeds is ignored and the
// harness sweeps consecutive seed windows (-soak-window seeds each)
// until the wall-clock budget is spent. With -soak-state the position
// is persisted as JSON after every window, so the next soak resumes
// where this one stopped and nightly runs walk a never-repeating seed
// space.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"slices"
	"sort"
	"strconv"
	"strings"
	"time"

	"lofat/internal/conform"
)

func main() {
	var (
		seedSpec   = flag.String("seeds", "0:25", "seed spec: comma list of seeds and start:end ranges")
		budget     = flag.Duration("budget", 0, "wall-clock soak budget (e.g. 15m); positive selects soak mode and ignores -seeds")
		soakState  = flag.String("soak-state", "", "soak resume-state JSON file (written atomically after every window)")
		soakWindow = flag.Int("soak-window", 0, "seeds per soak window (0 = default 25)")
		isr        = flag.Bool("isr", false, "interrupt-driven corpus: ISR programs, deterministic IRQ schedules, isr-hijack/interrupt-storm classes")
		pathSpec   = flag.String("path", "all", "delivery paths: comma list of direct, stream, fleet (or all)")
		mutations  = flag.String("mutations", "", "restrict to these mutation kinds (comma list; empty = all)")
		segEvents  = flag.Int("segment-events", 0, "streamed checkpoint window N (0 = default)")
		latency    = flag.Int("fleet-latency", 0, "faultconn latency per fleet I/O op, microseconds")
		workers    = flag.Int("workers", 0, "seed-level parallelism (0 = GOMAXPROCS)")
		jsonOut    = flag.Bool("json", false, "emit the full summary as JSON")
		verbose    = flag.Bool("v", false, "print every scenario, not only failures")
	)
	flag.Parse()

	seeds, err := parseSeeds(*seedSpec)
	if err != nil {
		fatalf("bad -seeds: %v", err)
	}
	paths, err := parsePaths(*pathSpec)
	if err != nil {
		fatalf("bad -path: %v", err)
	}
	// "oracle" and "corpus" are the per-seed pseudo-scenarios: their
	// recipes replay through the same flag (filtering out every real
	// mutation re-runs exactly the oracle / subject-construction pass).
	known := append(conform.MutationNames(), "oracle", "corpus")
	var muts []string
	if *mutations != "" {
		for _, m := range strings.Split(*mutations, ",") {
			m = strings.TrimSpace(m)
			if m == "" {
				continue
			}
			if !slices.Contains(known, m) {
				fatalf("bad -mutations: unknown mutation %q (known: %s)", m, strings.Join(known, ", "))
			}
			muts = append(muts, m)
		}
	}
	base := conform.Config{
		Seeds:         seeds,
		Paths:         paths,
		Mutations:     muts,
		SegmentEvents: *segEvents,
		FleetLatency:  *latency,
		Workers:       *workers,
		ISR:           *isr,
	}

	if *budget > 0 {
		runSoak(conform.SoakConfig{
			Budget:    *budget,
			Window:    *soakWindow,
			StateFile: *soakState,
			Base:      base,
		}, *jsonOut)
		return
	}

	sum := conform.New(base).Run()

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			fatalf("encode: %v", err)
		}
	} else {
		if *verbose {
			for _, r := range sum.Results {
				status := "pass"
				switch {
				case r.Skipped:
					status = "skip (" + r.SkipReason + ")"
				case len(r.Failures) > 0:
					status = "FAIL"
				}
				fmt.Printf("seed %4d  %-14s expect=%-23s %s\n", r.Seed, r.Mutation, r.Expect, status)
			}
		}
		fmt.Printf("conformance: %d seeds, %d scenarios (%d passed, %d skipped, %d failed), %d verdicts\n",
			sum.Seeds, sum.Scenarios, sum.Passed, sum.Skipped, sum.Failed, sum.Verdicts)
		classes := make([]string, 0, len(sum.ByClass))
		for c := range sum.ByClass {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		for _, c := range classes {
			fmt.Printf("  %-24s %d verdicts\n", c, sum.ByClass[c])
		}
	}

	if failures := sum.Failures(); len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "\n%d scenario(s) FAILED:\n", len(failures))
		for _, r := range failures {
			for _, f := range r.Failures {
				fmt.Fprintf(os.Stderr, "  seed %d %s: %s\n", r.Seed, r.Mutation, f)
			}
		}
		fmt.Fprintln(os.Stderr, "\nfailing seed recipes:")
		for _, r := range failures {
			fmt.Fprintf(os.Stderr, "  %s\n", r.Recipe())
		}
		os.Exit(1)
	}
}

// runSoak drives soak mode: rolling seed windows until the wall-clock
// budget is spent, one progress line per window, then the aggregate
// summary. Conformance failures exit 1 with the same repro recipes the
// fixed-seed mode prints.
func runSoak(cfg conform.SoakConfig, jsonOut bool) {
	cfg.Log = func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	}
	sum, err := conform.Soak(cfg)
	if err != nil {
		fatalf("soak: %v", err)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			fatalf("encode: %v", err)
		}
	} else {
		fmt.Printf("soak: seeds %d:%d in %d windows, %d scenarios (%d passed, %d skipped, %d failed), %d verdicts, %v elapsed\n",
			sum.FirstSeed, sum.NextSeed, sum.Windows,
			sum.Scenarios, sum.Passed, sum.Skipped, sum.Failed, sum.Verdicts,
			sum.Elapsed.Round(time.Millisecond))
	}
	if len(sum.Failures) > 0 {
		fmt.Fprintf(os.Stderr, "\n%d scenario(s) FAILED:\n", len(sum.Failures))
		for _, r := range sum.Failures {
			for _, f := range r.Failures {
				fmt.Fprintf(os.Stderr, "  seed %d %s: %s\n", r.Seed, r.Mutation, f)
			}
		}
		fmt.Fprintln(os.Stderr, "\nfailing seed recipes:")
		for _, r := range sum.Failures {
			fmt.Fprintf(os.Stderr, "  %s\n", r.Recipe())
		}
		os.Exit(1)
	}
}

// parseSeeds expands "0:200,7,300:310" into the seed list.
func parseSeeds(spec string) ([]int64, error) {
	var seeds []int64
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if lo, hi, ok := strings.Cut(part, ":"); ok {
			start, err := strconv.ParseInt(lo, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("range start %q: %w", lo, err)
			}
			end, err := strconv.ParseInt(hi, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("range end %q: %w", hi, err)
			}
			if end <= start {
				return nil, fmt.Errorf("empty range %q", part)
			}
			for s := start; s < end; s++ {
				seeds = append(seeds, s)
			}
			continue
		}
		s, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("seed %q: %w", part, err)
		}
		seeds = append(seeds, s)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("no seeds in %q", spec)
	}
	return seeds, nil
}

func parsePaths(spec string) ([]conform.Path, error) {
	if spec == "" || spec == "all" {
		return conform.AllPaths(), nil
	}
	var paths []conform.Path
	for _, part := range strings.Split(spec, ",") {
		switch p := conform.Path(strings.TrimSpace(part)); p {
		case conform.PathDirect, conform.PathStream, conform.PathFleet:
			paths = append(paths, p)
		case "fleet-direct", "fleet-stream":
			// Failure recipes name the specific fleet sweep verdict;
			// replaying it means running the fleet path.
			paths = append(paths, conform.PathFleet)
		default:
			return nil, fmt.Errorf("unknown path %q", part)
		}
	}
	return paths, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
