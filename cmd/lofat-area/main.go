// Command lofat-area runs the §6.2 synthesis model: area and maximum
// clock frequency of the LO-FAT units on the Zedboard's XC7Z020, for the
// paper's configuration and for sweeps over ℓ (branches per loop path),
// n (indirect target bits) and nesting depth.
//
// Usage:
//
//	lofat-area                # paper configuration
//	lofat-area -sweep l       # sweep branches-per-path
//	lofat-area -sweep n       # sweep indirect bits
//	lofat-area -sweep depth   # sweep nesting depth
//	lofat-area -l 12 -n 3 -d 2 -cam
package main

import (
	"flag"
	"fmt"
	"os"

	"lofat/internal/area"
)

func main() {
	l := flag.Int("l", 16, "branches per loop path (ℓ)")
	n := flag.Int("n", 4, "indirect target bits (n)")
	d := flag.Int("d", 3, "loop nesting depth")
	cam := flag.Bool("cam", false, "use CAM instead of BRAM for loop memories")
	sweep := flag.String("sweep", "", "sweep one parameter: l, n, or depth")
	flag.Parse()

	base := area.Config{BranchesPerPath: *l, IndirectBits: *n, NestingDepth: *d, UseCAMForLoopMem: *cam}

	var cfgs []area.Config
	switch *sweep {
	case "":
		cfgs = []area.Config{base}
	case "l":
		for _, v := range []int{8, 10, 12, 14, 16, 18} {
			c := base
			c.BranchesPerPath = v
			cfgs = append(cfgs, c)
		}
	case "n":
		for _, v := range []int{1, 2, 3, 4, 5, 6} {
			c := base
			c.IndirectBits = v
			cfgs = append(cfgs, c)
		}
	case "depth":
		for v := 1; v <= 4; v++ {
			c := base
			c.NestingDepth = v
			cfgs = append(cfgs, c)
		}
	default:
		fmt.Fprintf(os.Stderr, "lofat-area: unknown sweep %q (want l, n, or depth)\n", *sweep)
		os.Exit(2)
	}

	for _, r := range area.Sweep(cfgs) {
		fmt.Println(r)
	}
}
