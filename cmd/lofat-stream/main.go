// Command lofat-stream demonstrates streaming (segmented) attestation:
// the prover emits chained sub-measurements every N control-flow
// events, the verifier checks each segment against golden-run
// checkpoints as it arrives, and an injected attack is rejected at the
// FIRST divergent segment — mid-run — with the offending control-flow
// edge localized and classified, instead of a bare hash mismatch after
// the run completes.
//
// Usage:
//
//	lofat-stream                            # honest syringe-pump run
//	lofat-stream -attack loop-counter       # rejected mid-run, class 2
//	lofat-stream -attack code-pointer       # rejected mid-run, class 3
//	lofat-stream -attack auth-bypass -segment 4
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"os"

	"lofat/internal/attest"
	"lofat/internal/core"
	"lofat/internal/sig"
	"lofat/internal/stream"
	"lofat/internal/workloads"
)

func main() {
	workload := flag.String("w", "syringe-pump", "workload to attest")
	attackName := flag.String("attack", "", "attack to arm (loop-counter, auth-bypass, code-pointer, dop-data-only; empty = honest)")
	segment := flag.Int("segment", 8, "checkpoint window N (control-flow events per segment)")
	flag.Parse()

	if err := run(*workload, *attackName, *segment); err != nil {
		fmt.Fprintf(os.Stderr, "lofat-stream: %v\n", err)
		os.Exit(1)
	}
}

func run(workload, attackName string, segment int) error {
	w, ok := workloads.ByName(workload)
	if !ok {
		return fmt.Errorf("unknown workload %q", workload)
	}
	input := w.Input
	var atk workloads.Attack
	if attackName != "" {
		atk, ok = workloads.AttackByName(attackName)
		if !ok {
			return fmt.Errorf("unknown attack %q", attackName)
		}
		w = atk.Workload
		input = w.Input
	}
	prog, err := w.Assemble()
	if err != nil {
		return err
	}
	keys, err := sig.GenerateKeyStore(rand.Reader)
	if err != nil {
		return err
	}
	ap := attest.NewProver(prog, core.Config{}, keys)
	av, err := attest.NewVerifier(prog, core.Config{}, keys.Public(), rand.Reader)
	if err != nil {
		return err
	}
	if attackName != "" {
		ap.Adversary = atk.Build(prog)
		fmt.Printf("armed attack %q (class %d): %s\n", atk.Name, atk.Class, atk.Description)
	}

	sp := stream.NewProver(ap)
	sv := stream.NewVerifier(av, stream.Config{SegmentEvents: segment})
	fmt.Printf("streaming %q with window N=%d control-flow events\n\n", w.Name, segment)

	res, err := stream.AttestOnce(sp, sv, input, func(sr *stream.SegmentReport) {
		fmt.Printf("  segment %3d: %3d events, chain %x...\n", sr.Index, sr.Events, sr.Chain[:8])
	})
	if err != nil {
		return err
	}

	fmt.Println()
	if res.Accepted {
		fmt.Printf("ACCEPTED after %d segments (full stream verified, close report checked)\n", res.Segments)
		return nil
	}
	fmt.Printf("REJECTED (%v) after %d segments\n", res.Class, res.Segments)
	if res.EarlyAbort {
		fmt.Println("early abort: the device was cut off MID-RUN at the first divergent segment")
	}
	if d := res.Divergence; d != nil {
		fmt.Printf("forensics: %s\n", d)
	}
	for _, f := range res.Findings {
		fmt.Printf("  - %s\n", f)
	}
	return nil
}
