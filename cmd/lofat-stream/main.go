// Command lofat-stream demonstrates streaming (segmented) attestation:
// the prover emits chained sub-measurements every N control-flow
// events, the verifier checks each segment against golden-run
// checkpoints as it arrives, and an injected attack is rejected at the
// FIRST divergent segment — mid-run — with the offending control-flow
// edge localized and classified, instead of a bare hash mismatch after
// the run completes.
//
// Usage:
//
//	lofat-stream                            # honest syringe-pump run
//	lofat-stream -attack loop-counter       # rejected mid-run, class 2
//	lofat-stream -attack code-pointer       # rejected mid-run, class 3
//	lofat-stream -attack auth-bypass -segment 4
//	lofat-stream -trace-out stream.trace.json  # Perfetto trace of the run
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"os"
	"time"

	"lofat/internal/attest"
	"lofat/internal/core"
	"lofat/internal/obs"
	"lofat/internal/sig"
	"lofat/internal/stream"
	"lofat/internal/workloads"
)

func main() {
	workload := flag.String("w", "syringe-pump", "workload to attest")
	attackName := flag.String("attack", "", "attack to arm (loop-counter, auth-bypass, code-pointer, dop-data-only; empty = honest)")
	segment := flag.Int("segment", 8, "checkpoint window N (control-flow events per segment)")
	traceOut := flag.String("trace-out", "", "write a Chrome/Perfetto trace of the run to this file")
	flag.Parse()

	if err := run(*workload, *attackName, *segment, *traceOut); err != nil {
		fmt.Fprintf(os.Stderr, "lofat-stream: %v\n", err)
		os.Exit(1)
	}
}

func run(workload, attackName string, segment int, traceOut string) error {
	w, ok := workloads.ByName(workload)
	if !ok {
		return fmt.Errorf("unknown workload %q", workload)
	}
	input := w.Input
	var atk workloads.Attack
	if attackName != "" {
		atk, ok = workloads.AttackByName(attackName)
		if !ok {
			return fmt.Errorf("unknown attack %q", attackName)
		}
		w = atk.Workload
		input = w.Input
	}
	prog, err := w.Assemble()
	if err != nil {
		return err
	}
	keys, err := sig.GenerateKeyStore(rand.Reader)
	if err != nil {
		return err
	}
	ap := attest.NewProver(prog, core.Config{}, keys)
	av, err := attest.NewVerifier(prog, core.Config{}, keys.Public(), rand.Reader)
	if err != nil {
		return err
	}
	if attackName != "" {
		ap.Adversary = atk.Build(prog)
		fmt.Printf("armed attack %q (class %d): %s\n", atk.Name, atk.Class, atk.Description)
	}

	// Per-segment verify latencies always feed a histogram (it is one
	// atomic-array, effectively free); the trace is opt-in via the flag.
	segHist := new(obs.Histogram)
	scfg := stream.Config{SegmentEvents: segment, SegmentHist: segHist}
	var tracer *obs.Tracer
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		tracer = obs.NewTracer(f)
		scfg.Trace = obs.Scope{T: tracer, TID: tracer.NextTID()}
	}

	sp := stream.NewProver(ap)
	sv := stream.NewVerifier(av, scfg)
	fmt.Printf("streaming %q with window N=%d control-flow events\n\n", w.Name, segment)

	res, err := stream.AttestOnce(sp, sv, input, func(sr *stream.SegmentReport) {
		fmt.Printf("  segment %3d: %3d events, chain %x...\n", sr.Index, sr.Events, sr.Chain[:8])
	})
	if tracer != nil {
		if cerr := tracer.Close(); cerr != nil {
			fmt.Fprintf(os.Stderr, "lofat-stream: trace: %v\n", cerr)
		} else {
			fmt.Printf("\ntrace written to %s (load in ui.perfetto.dev)\n", traceOut)
		}
	}
	if err != nil {
		return err
	}
	if h := segHist.Snapshot(); h.Count > 0 {
		fmt.Printf("\nsegment verify latency: %d segments, mean %v, p50/p95/p99 %v/%v/%v\n",
			h.Count, time.Duration(h.Mean()),
			time.Duration(h.Quantile(0.5)), time.Duration(h.Quantile(0.95)), time.Duration(h.Quantile(0.99)))
	}

	fmt.Println()
	if res.Accepted {
		fmt.Printf("ACCEPTED after %d segments (full stream verified, close report checked)\n", res.Segments)
		return nil
	}
	fmt.Printf("REJECTED (%v) after %d segments\n", res.Class, res.Segments)
	if res.EarlyAbort {
		fmt.Println("early abort: the device was cut off MID-RUN at the first divergent segment")
	}
	if d := res.Divergence; d != nil {
		fmt.Printf("forensics: %s\n", d)
	}
	for _, f := range res.Findings {
		fmt.Printf("  - %s\n", f)
	}
	return nil
}
