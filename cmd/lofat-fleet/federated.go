package main

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"lofat/internal/attest"
	"lofat/internal/core"
	"lofat/internal/fed"
	"lofat/internal/fed/faultfs"
	"lofat/internal/fleet"
	"lofat/internal/fleet/faultconn"
	"lofat/internal/obs"
	"lofat/internal/sig"
	"lofat/internal/workloads"
)

// fedConfig bundles the federated-mode flags.
type fedConfig struct {
	nodes    int
	replicas int
	snapDir  string
	kill     bool
	killMid  bool
	join     bool
	// diskFault injects a storage fault into node-0's persistence:
	// "fsync" (every fsync fails — the lame-duck path) or "enospc"
	// (the disk fills mid-write).
	diskFault string
}

// nodeHandle wraps an in-process verifier node with the connection
// bookkeeping a kill needs: crashing a real node severs its TCP
// connections, so the demo kill closes every open control-plane pipe
// alongside abandoning the WAL.
type nodeHandle struct {
	node *fed.Node

	mu    sync.Mutex
	conns []net.Conn
	down  bool
}

func (h *nodeHandle) dial() (io.ReadWriteCloser, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.down {
		return nil, fmt.Errorf("node %s is down", h.node.ID())
	}
	client, server := net.Pipe()
	h.conns = append(h.conns, server)
	go func() {
		defer server.Close()
		_ = h.node.ServeConn(server)
	}()
	return client, nil
}

func (h *nodeHandle) kill() {
	h.mu.Lock()
	h.down = true
	conns := h.conns
	h.conns = nil
	h.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	h.node.Kill()
}

func (h *nodeHandle) close() {
	h.mu.Lock()
	h.down = true
	conns := h.conns
	h.conns = nil
	h.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	if err := h.node.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "lofat-fleet: close node %s: %v\n", h.node.ID(), err)
	}
}

// runFederated is the multi-verifier variant of run: the same simulated
// TCP device fleet, but sharded by the placement ring across fc.nodes
// verifier nodes behind one coordinator, with optional persistent
// registries and kill/rejoin or join/rebalance chaos.
func runFederated(devices, attacked, stalled, dropping int, attackName, workload string, sweeps int, cfg fleet.Config, fc fedConfig, o obsConfig) error {
	w, ok := workloads.ByName(workload)
	if !ok {
		return fmt.Errorf("unknown workload %q", workload)
	}
	atk, ok := workloads.AttackByName(attackName)
	if !ok {
		return fmt.Errorf("unknown attack %q", attackName)
	}
	if attacked > devices {
		attacked = devices
	}
	if attacked+stalled+dropping > devices {
		return fmt.Errorf("attacked+stalled+dropping (%d) exceeds -devices (%d)", attacked+stalled+dropping, devices)
	}
	if (fc.kill || fc.diskFault != "") && fc.snapDir == "" {
		dir, err := os.MkdirTemp("", "lofat-fed-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		fc.snapDir = dir
		fmt.Printf("persisting node registries under %s (needed by -kill / -disk-fault)\n", dir)
	}
	// The fault is armed only after enrollment (below), so the demo
	// always shows a warmed node losing its disk — never a node that
	// cannot even enroll its shard.
	var diskInj *faultfs.Injector
	var diskPlan faultfs.Plan
	switch fc.diskFault {
	case "":
	case "fsync":
		diskPlan = faultfs.Plan{SyncErrOn: 1, Err: errors.New("injected: fsync: input/output error")}
	case "enospc":
		diskPlan = faultfs.Plan{WriteErrAfter: 1, Err: errors.New("injected: no space left on device")}
	default:
		return fmt.Errorf("unknown -disk-fault %q (want fsync or enospc)", fc.diskFault)
	}
	prog, err := w.Assemble()
	if err != nil {
		return err
	}

	hub, obsDone, err := setupObs(o)
	if err != nil {
		return err
	}
	defer obsDone()

	plans := make(map[string]faultconn.Plan)
	dialTO := cfg.DialTimeout
	tcpDial := func(addr string) (io.ReadWriteCloser, error) {
		return net.DialTimeout("tcp", addr, dialTO)
	}
	var plansMu sync.Mutex
	cfg.Dial = faultconn.Wrap(tcpDial, func(addr string) (faultconn.Plan, bool) {
		plansMu.Lock()
		defer plansMu.Unlock()
		p, ok := plans[addr]
		return p, ok
	})

	nodeCfg := func(i int) fed.NodeConfig {
		nc := fed.NodeConfig{ID: fed.NodeID(fmt.Sprintf("node-%d", i)), Fleet: cfg}
		if fc.snapDir != "" {
			nc.Dir = filepath.Join(fc.snapDir, string(nc.ID))
		}
		if i == 0 && fc.diskFault != "" {
			diskInj = faultfs.New(faultfs.OS{}, faultfs.Plan{})
			nc.FS = diskInj
		}
		return nc
	}
	startNode := func(i int) (*nodeHandle, error) {
		n, err := fed.NewNode(nodeCfg(i))
		if err != nil {
			return nil, err
		}
		return &nodeHandle{node: n}, nil
	}

	coord := fed.NewCoordinator(fed.Config{Obs: hub, Replicas: fc.replicas})
	defer coord.Close()
	handles := make([]*nodeHandle, fc.nodes)
	for i := range handles {
		h, err := startNode(i)
		if err != nil {
			return err
		}
		handles[i] = h
		defer h.close()
		if _, err := coord.Join(h.node.ID(), h.dial); err != nil {
			return err
		}
	}
	persisted := "ephemeral"
	if fc.snapDir != "" {
		persisted = "snapshot/WAL under " + fc.snapDir
	}
	replicas := fc.replicas
	if replicas <= 0 {
		replicas = 1
	}
	fmt.Printf("federation: %d verifier nodes, %d replica(s) per device (%s)\n", fc.nodes, replicas, persisted)

	progID, err := coord.RegisterProgram(prog, core.Config{}, [][]uint32{w.Input})
	if err != nil {
		return err
	}
	fmt.Printf("registered firmware %q as program %v on every node\n", w.Name, progID)

	var servers []*attest.Server
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	start := time.Now()
	for i := 0; i < devices; i++ {
		keys, err := sig.GenerateKeyStore(rand.Reader)
		if err != nil {
			return err
		}
		p := attest.NewProver(prog, core.Config{}, keys)
		if i < attacked {
			p.Adversary = atk.Build(prog)
		}
		reg := attest.NewRegistry()
		reg.Register(p)
		srv := attest.NewServer(reg)
		srv.IdleTimeout = proverIdleTimeout(cfg)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return err
		}
		servers = append(servers, srv)
		switch {
		case i >= attacked && i < attacked+stalled:
			plansMu.Lock()
			plans[addr.String()] = faultconn.Plan{StallWriteAfter: 3}
			plansMu.Unlock()
		case i >= attacked+stalled && i < attacked+stalled+dropping:
			plansMu.Lock()
			plans[addr.String()] = faultconn.Plan{CloseAfter: 2}
			plansMu.Unlock()
		}
		id := fleet.DeviceID(fmt.Sprintf("dev-%04d", i))
		if err := coord.Enroll(id, progID, keys.Public(), addr.String()); err != nil {
			return err
		}
	}
	fmt.Printf("enrolled %d devices across %d nodes (%d armed with %q, %d stalled, %d dropping) in %v\n",
		devices, fc.nodes, attacked, atk.Name, stalled, dropping, time.Since(start).Round(time.Millisecond))
	if diskInj != nil {
		diskInj.Arm(diskPlan)
		fmt.Printf("armed disk fault %q on %s (%d bytes already durable)\n",
			fc.diskFault, handles[0].node.ID(), diskInj.Stats().BytesWritten)
	}

	sweep := func(label string) error {
		v, err := coord.Sweep(progID, w.Input, false)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %v\n", label, v)
		return nil
	}
	for i := 0; i < sweeps; i++ {
		if err := sweep(fmt.Sprintf("sweep %d", i+1)); err != nil {
			return err
		}
	}

	if fc.killMid {
		victim := handles[0]
		fmt.Printf("\n--- chaos: killing %s DURING the next sweep (failover needs -replicas >= 2) ---\n", victim.node.ID())
		timer := time.AfterFunc(2*time.Millisecond, victim.kill)
		v, err := coord.Sweep(progID, w.Input, false)
		timer.Stop()
		if err != nil {
			return err
		}
		fmt.Printf("mid-sweep-kill sweep: %v\n", v)
		if len(v.FailedOver) > 0 {
			fmt.Printf("failed over %d device(s) to surviving replicas in %d wave(s):\n", len(v.FailedOver), v.Waves)
			shown := 0
			for id, to := range v.FailedOver {
				fmt.Printf("  %s → %s\n", id, to)
				if shown++; shown >= 10 {
					fmt.Println("  ...")
					break
				}
			}
		}
		if len(v.Uncovered) > 0 {
			fmt.Printf("UNCOVERED after failover: %d device(s) — no live replica held them\n", len(v.Uncovered))
		}
		if err := sweep("post-failover sweep"); err != nil {
			return err
		}
	}

	if fc.diskFault != "" {
		n := handles[0].node
		fmt.Printf("\n--- disk fault %q on %s ---\n", fc.diskFault, n.ID())
		if lame, reason := n.Health(); lame {
			fmt.Printf("%s is a lame duck (read-only): %s\n", n.ID(), reason)
		} else {
			fmt.Printf("%s still reports healthy storage (fault not yet hit; reason=%q)\n", n.ID(), reason)
		}
		if err := sweep("degraded-storage sweep"); err != nil {
			return err
		}
		if err := coord.Enroll("probe-enroll", progID, nil, "127.0.0.1:1"); err != nil {
			fmt.Printf("enroll on the degraded federation refused: %v\n", err)
		} else {
			fmt.Println("enroll on the degraded federation accepted (device placed on a healthy replica)")
		}
	}

	if fc.kill {
		victim := handles[0]
		fmt.Printf("\n--- chaos: killing %s (no final sync; WAL abandoned as-is) ---\n", victim.node.ID())
		victim.kill()
		if err := sweep("degraded sweep"); err != nil {
			return err
		}
		restarted, err := startNode(0)
		if err != nil {
			return fmt.Errorf("warm restart: %w", err)
		}
		handles[0] = restarted
		defer restarted.close()
		fmt.Printf("warm restart: %s recovered %d pending devices from snapshot+WAL\n",
			restarted.node.ID(), restarted.node.PendingDevices())
		if err := coord.Rejoin(restarted.node.ID(), restarted.dial); err != nil {
			return err
		}
		if err := sweep("post-rejoin sweep"); err != nil {
			return err
		}
	}

	if fc.join {
		h, err := startNode(fc.nodes)
		if err != nil {
			return err
		}
		defer h.close()
		fmt.Printf("\n--- joining %s ---\n", h.node.ID())
		rep, err := coord.Join(h.node.ID(), h.dial)
		if err != nil {
			return err
		}
		fmt.Printf("rebalance: %d devices moved (%d with full state, %d re-enrolled fresh), %d errors\n",
			rep.Moved, rep.Transferred, rep.Recovered, len(rep.Errors))
		if err := sweep("post-join sweep"); err != nil {
			return err
		}
	}

	if fr := hub.Flight; fr != nil && fr.Len() > 0 {
		fmt.Println("\ncoordinator flight recorder (topology, rebalance, failover, lame-duck events):")
		topo := 0
		for _, e := range fr.Events() {
			switch e.Kind {
			case obs.KindNodeJoin, obs.KindNodeLeave, obs.KindRebalance, obs.KindFailover, obs.KindLameDuck:
				fmt.Printf("  #%d %s %s %s\n", e.Seq, e.Kind, e.Device, e.Detail)
				topo++
			}
			if topo >= 20 {
				fmt.Println("  ...")
				break
			}
		}
	}
	return nil
}
