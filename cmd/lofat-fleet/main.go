// Command lofat-fleet demonstrates the fleet attestation service: it
// spins up K simulated LO-FAT devices — each an attest.Server on a
// loopback TCP port with its own hardware key, all running the same
// firmware — enrols them in a fleet.Service, and drives attestation
// sweeps through the worker-pool verification pipeline. A fraction of
// the fleet can be armed with a Figure 1 attack to exercise detection
// and quarantine, and another fraction can be degraded at the transport
// layer (stalling mid-frame or dropping connections, via the faultconn
// harness) to exercise the deadline / retry / circuit-breaker
// resilience path.
//
// Usage:
//
//	lofat-fleet                                  # 100 devices, 2 sweeps
//	lofat-fleet -devices 250 -attacked 10
//	lofat-fleet -attack auth-bypass -attacked 3
//	lofat-fleet -stalled 5 -dropping 5 -sweeps 4 # transport chaos
//	lofat-fleet -read-timeout 500ms -retries 3 -breaker 2
//	lofat-fleet -nocache                         # per-device golden runs
//	lofat-fleet -interval 500ms -duration 3s     # scheduler-driven sweeps
//	lofat-fleet -metrics-addr 127.0.0.1:9464     # live /metrics + pprof
//	lofat-fleet -trace-out sweep.trace.json      # Perfetto trace of the run
//
// Federated mode shards the same fleet across several verifier nodes
// behind one coordinator (internal/fed), optionally with persistent
// per-node registries and chaos:
//
//	lofat-fleet -nodes 3                         # 3 verifier nodes, ring-sharded
//	lofat-fleet -nodes 3 -replicas 2             # every device held by 2 nodes (warm standby)
//	lofat-fleet -nodes 3 -snapshot-dir /tmp/fed  # snapshot/WAL-persistent registries
//	lofat-fleet -nodes 3 -kill                   # crash node-0 mid-run, warm-restart, rejoin
//	lofat-fleet -nodes 3 -replicas 2 -kill-during-sweep  # crash node-0 MID-sweep; replicas fail over
//	lofat-fleet -nodes 3 -join                   # join a 4th node after the sweeps, rebalance
//	lofat-fleet -nodes 3 -disk-fault fsync       # node-0's disk dies; lame-duck read-only mode
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"lofat/internal/attest"
	"lofat/internal/core"
	"lofat/internal/fleet"
	"lofat/internal/fleet/faultconn"
	"lofat/internal/obs"
	"lofat/internal/sig"
	"lofat/internal/workloads"
)

func main() {
	devices := flag.Int("devices", 100, "number of simulated devices")
	attacked := flag.Int("attacked", 4, "devices armed with the attack")
	attackName := flag.String("attack", "loop-counter", "attack scenario for armed devices (loop-counter, auth-bypass, code-pointer, dop-data-only)")
	workload := flag.String("w", "syringe-pump", "shared firmware workload")
	sweeps := flag.Int("sweeps", 2, "attestation sweeps to run")
	workers := flag.Int("workers", 0, "verification workers (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 16, "device registry shards")
	nocache := flag.Bool("nocache", false, "disable the shared measurement cache")
	interval := flag.Duration("interval", 0, "run the periodic scheduler at this interval instead of manual sweeps")
	duration := flag.Duration("duration", 2*time.Second, "how long to run the scheduler (with -interval)")

	stalled := flag.Int("stalled", 0, "devices whose transport stalls mid-frame (chaos)")
	dropping := flag.Int("dropping", 0, "devices whose connection drops mid-exchange (chaos)")
	dialTO := flag.Duration("dial-timeout", 5*time.Second, "transport dial timeout")
	readTO := flag.Duration("read-timeout", 30*time.Second, "per-phase read deadline (negative disables)")
	writeTO := flag.Duration("write-timeout", 30*time.Second, "per-phase write deadline (negative disables)")
	retries := flag.Int("retries", 2, "total transport attempts per round")
	backoff := flag.Duration("backoff", 50*time.Millisecond, "base retry backoff (doubled per attempt, jittered)")
	breaker := flag.Int("breaker", 3, "consecutive failed rounds that trip a device's circuit breaker (negative disables)")

	nodes := flag.Int("nodes", 0, "federate across this many verifier nodes (0 = single service)")
	replicas := flag.Int("replicas", 1, "distinct verifier nodes holding each device's state (federated mode)")
	snapDir := flag.String("snapshot-dir", "", "persist each node's registry (snapshot + WAL) under this directory")
	killNode := flag.Bool("kill", false, "crash node-0 after the sweeps, then warm-restart and rejoin it (federated mode)")
	killMid := flag.Bool("kill-during-sweep", false, "crash node-0 in the middle of a sweep; surviving replicas take over (federated mode)")
	joinNode := flag.Bool("join", false, "join one extra node after the sweeps and rebalance (federated mode)")
	diskFault := flag.String("disk-fault", "", "inject a storage fault into node-0: fsync (lame-duck path) or enospc (federated mode)")

	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /flight and pprof on this address (empty = off)")
	pprofOn := flag.Bool("pprof", true, "mount /debug/pprof/ on the metrics server (with -metrics-addr)")
	traceOut := flag.String("trace-out", "", "write a Chrome/Perfetto trace of the run to this file")
	flightCap := flag.Int("flight", obs.DefaultFlightCapacity, "flight recorder capacity in events (0 disables)")
	flag.Parse()

	cfg := fleet.Config{
		Workers:          *workers,
		Shards:           *shards,
		DisableCache:     *nocache,
		DialTimeout:      *dialTO,
		ReadTimeout:      *readTO,
		WriteTimeout:     *writeTO,
		RetryAttempts:    *retries,
		RetryBackoff:     *backoff,
		BreakerThreshold: *breaker,
	}
	o := obsConfig{metricsAddr: *metricsAddr, pprof: *pprofOn, traceOut: *traceOut, flightCap: *flightCap}
	var err error
	if *nodes > 0 {
		if *killNode && *killMid {
			fmt.Fprintln(os.Stderr, "lofat-fleet: -kill and -kill-during-sweep both crash node-0; pick one")
			os.Exit(2)
		}
		fc := fedConfig{
			nodes: *nodes, replicas: *replicas, snapDir: *snapDir,
			kill: *killNode, killMid: *killMid, join: *joinNode, diskFault: *diskFault,
		}
		err = runFederated(*devices, *attacked, *stalled, *dropping, *attackName, *workload, *sweeps, cfg, fc, o)
	} else {
		if *killNode || *killMid || *joinNode || *snapDir != "" || *replicas != 1 || *diskFault != "" {
			fmt.Fprintln(os.Stderr, "lofat-fleet: -kill/-kill-during-sweep/-join/-snapshot-dir/-replicas/-disk-fault need federated mode (-nodes N)")
			os.Exit(2)
		}
		err = run(*devices, *attacked, *stalled, *dropping, *attackName, *workload, *sweeps, cfg, *interval, *duration, o)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "lofat-fleet: %v\n", err)
		os.Exit(1)
	}
}

// obsConfig bundles the observability flags.
type obsConfig struct {
	metricsAddr string
	pprof       bool
	traceOut    string
	flightCap   int
}

// setupObs builds the observability hub from the flags and starts the
// metrics server when requested. It returns the hub (never nil — a hub
// with only the registry is effectively free) and a teardown that
// flushes the trace file and stops the server.
func setupObs(o obsConfig) (*obs.Hub, func(), error) {
	hub := obs.NewHub()
	var teardown []func()

	var traceFile *os.File
	if o.traceOut != "" {
		f, err := os.Create(o.traceOut)
		if err != nil {
			return nil, nil, err
		}
		traceFile = f
		hub.Tracer = obs.NewTracer(f)
		teardown = append(teardown, func() {
			if err := hub.Tracer.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "lofat-fleet: trace: %v\n", err)
			}
			traceFile.Close()
			fmt.Printf("trace written to %s (load in ui.perfetto.dev)\n", o.traceOut)
		})
	}
	if o.flightCap > 0 {
		hub.Flight = obs.NewFlight(o.flightCap)
	}
	if o.metricsAddr != "" {
		ln, err := net.Listen("tcp", o.metricsAddr)
		if err != nil {
			if traceFile != nil {
				traceFile.Close()
			}
			return nil, nil, fmt.Errorf("metrics listener: %w", err)
		}
		srv := &http.Server{Handler: hub.Handler(o.pprof)}
		go srv.Serve(ln)
		fmt.Printf("metrics on http://%s/metrics", ln.Addr())
		if o.pprof {
			fmt.Printf(" (pprof on /debug/pprof/)")
		}
		fmt.Println()
		teardown = append(teardown, func() { srv.Close() })
	}
	return hub, func() {
		for i := len(teardown) - 1; i >= 0; i-- {
			teardown[i]()
		}
	}, nil
}

// proverIdleTimeout derives the simulated devices' server-side idle
// deadline from the verifier's per-phase timeouts, so a stalled
// exchange frees the prover goroutine on the same scale the operator
// tuned (twice the slower phase, floor 1s; disabled phases fall back
// to 30s).
func proverIdleTimeout(cfg fleet.Config) time.Duration {
	d := max(cfg.ReadTimeout, cfg.WriteTimeout)
	if d <= 0 {
		return 30 * time.Second
	}
	return max(2*d, time.Second)
}

func run(devices, attacked, stalled, dropping int, attackName, workload string, sweeps int, cfg fleet.Config, interval, duration time.Duration, o obsConfig) error {
	w, ok := workloads.ByName(workload)
	if !ok {
		return fmt.Errorf("unknown workload %q", workload)
	}
	atk, ok := workloads.AttackByName(attackName)
	if !ok {
		return fmt.Errorf("unknown attack %q", attackName)
	}
	if attacked > devices {
		attacked = devices
	}
	if attacked+stalled+dropping > devices {
		return fmt.Errorf("attacked+stalled+dropping (%d) exceeds -devices (%d)", attacked+stalled+dropping, devices)
	}
	prog, err := w.Assemble()
	if err != nil {
		return err
	}

	hub, obsDone, err := setupObs(o)
	if err != nil {
		return err
	}
	defer obsDone()
	cfg.Obs = hub

	// Transport-chaos plans keyed by enrolled address, applied by a
	// faultconn wrapper around the plain TCP dial. The table is fully
	// built during enrolment, before any sweep dials.
	plans := make(map[string]faultconn.Plan)
	dialTO := cfg.DialTimeout
	tcpDial := func(addr string) (io.ReadWriteCloser, error) {
		return net.DialTimeout("tcp", addr, dialTO)
	}
	var plansMu sync.Mutex
	cfg.Dial = faultconn.Wrap(tcpDial, func(addr string) (faultconn.Plan, bool) {
		plansMu.Lock()
		defer plansMu.Unlock()
		p, ok := plans[addr]
		return p, ok
	})

	svc := fleet.NewService(cfg)
	defer svc.Close()
	progID, err := svc.RegisterProgram(prog, core.Config{}, [][]uint32{w.Input})
	if err != nil {
		return err
	}
	fmt.Printf("registered firmware %q as program %v\n", w.Name, progID)

	// Spin up the simulated fleet: one attest.Server per device on a
	// loopback port, each provisioned with its own key at "manufacture".
	// Device roles by index: [0,attacked) armed, then stalled, then
	// dropping, the rest honest.
	var servers []*attest.Server
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	start := time.Now()
	for i := 0; i < devices; i++ {
		keys, err := sig.GenerateKeyStore(rand.Reader)
		if err != nil {
			return err
		}
		p := attest.NewProver(prog, core.Config{}, keys)
		if i < attacked {
			p.Adversary = atk.Build(prog)
		}
		reg := attest.NewRegistry()
		reg.Register(p)
		srv := attest.NewServer(reg)
		srv.IdleTimeout = proverIdleTimeout(cfg)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return err
		}
		servers = append(servers, srv)
		switch {
		case i >= attacked && i < attacked+stalled:
			// Deliver 3 bytes of the challenge frame, swallow the rest:
			// the prover blocks mid-ReadFull, the verifier's read
			// deadline times the round out.
			plansMu.Lock()
			plans[addr.String()] = faultconn.Plan{StallWriteAfter: 3}
			plansMu.Unlock()
		case i >= attacked+stalled && i < attacked+stalled+dropping:
			plansMu.Lock()
			plans[addr.String()] = faultconn.Plan{CloseAfter: 2}
			plansMu.Unlock()
		}
		id := fleet.DeviceID(fmt.Sprintf("dev-%04d", i))
		if err := svc.Enroll(id, progID, keys.Public(), addr.String()); err != nil {
			return err
		}
	}
	fmt.Printf("enrolled %d devices (%d armed with %q, %d stalled, %d dropping) in %v\n",
		devices, attacked, atk.Name, stalled, dropping, time.Since(start).Round(time.Millisecond))

	if interval > 0 {
		fmt.Printf("scheduler sweeping every %v for %v\n", interval, duration)
		stop := svc.StartScheduler(interval)
		time.Sleep(duration)
		stop()
		for i, rep := range svc.Reports() {
			fmt.Printf("sweep %d: %v\n", i+1, rep)
		}
	} else {
		for i := 0; i < sweeps; i++ {
			reports, err := svc.Sweep()
			if err != nil {
				fmt.Printf("sweep %d: partial failure: %v\n", i+1, err)
				dumpFlight(svc, "sweep failure")
			}
			for _, rep := range reports {
				fmt.Printf("sweep %d: %v\n", i+1, rep)
			}
		}
	}

	snap := svc.Metrics()
	fmt.Println(snap)
	if snap.Errors > 0 {
		dumpFlight(svc, fmt.Sprintf("%d transport error(s)", snap.Errors))
	}
	if q := svc.Quarantined(); len(q) > 0 {
		fmt.Printf("quarantined devices:\n")
		for _, id := range q {
			st, _ := svc.Device(id)
			fmt.Printf("  %s: %v", id, st.LastClass)
			if len(st.LastFindings) > 0 {
				fmt.Printf(" (%s)", st.LastFindings[0])
			}
			fmt.Println()
		}
	}
	if tr := svc.Tripped(); len(tr) > 0 {
		fmt.Printf("tripped breakers (transport-faulty, not quarantined):\n")
		for _, id := range tr {
			st, _ := svc.Device(id)
			fmt.Printf("  %s: %d transport errors, last: %s\n", id, st.TransportErrors, st.LastError)
		}
	}
	return nil
}

// dumpFlight writes the flight-recorder ring to stderr, once per cause,
// so a failed run leaves the per-device event history in the log.
func dumpFlight(svc *fleet.Service, cause string) {
	fr := svc.Flight()
	if fr == nil || fr.Len() == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "--- flight recorder dump (%s) ---\n", cause)
	if err := fr.Dump(os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "lofat-fleet: flight dump: %v\n", err)
	}
}
