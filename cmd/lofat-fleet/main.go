// Command lofat-fleet demonstrates the fleet attestation service: it
// spins up K simulated LO-FAT devices — each an attest.Server on a
// loopback TCP port with its own hardware key, all running the same
// firmware — enrols them in a fleet.Service, and drives attestation
// sweeps through the worker-pool verification pipeline. A fraction of
// the fleet can be armed with a Figure 1 attack to exercise detection
// and quarantine.
//
// Usage:
//
//	lofat-fleet                                  # 100 devices, 2 sweeps
//	lofat-fleet -devices 250 -attacked 10
//	lofat-fleet -attack auth-bypass -attacked 3
//	lofat-fleet -nocache                         # per-device golden runs
//	lofat-fleet -interval 500ms -duration 3s     # scheduler-driven sweeps
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"os"
	"time"

	"lofat/internal/attest"
	"lofat/internal/core"
	"lofat/internal/fleet"
	"lofat/internal/sig"
	"lofat/internal/workloads"
)

func main() {
	devices := flag.Int("devices", 100, "number of simulated devices")
	attacked := flag.Int("attacked", 4, "devices armed with the attack")
	attackName := flag.String("attack", "loop-counter", "attack scenario for armed devices (loop-counter, auth-bypass, code-pointer, dop-data-only)")
	workload := flag.String("w", "syringe-pump", "shared firmware workload")
	sweeps := flag.Int("sweeps", 2, "attestation sweeps to run")
	workers := flag.Int("workers", 0, "verification workers (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 16, "device registry shards")
	nocache := flag.Bool("nocache", false, "disable the shared measurement cache")
	interval := flag.Duration("interval", 0, "run the periodic scheduler at this interval instead of manual sweeps")
	duration := flag.Duration("duration", 2*time.Second, "how long to run the scheduler (with -interval)")
	flag.Parse()

	if err := run(*devices, *attacked, *attackName, *workload, *sweeps, *workers, *shards, *nocache, *interval, *duration); err != nil {
		fmt.Fprintf(os.Stderr, "lofat-fleet: %v\n", err)
		os.Exit(1)
	}
}

func run(devices, attacked int, attackName, workload string, sweeps, workers, shards int, nocache bool, interval, duration time.Duration) error {
	w, ok := workloads.ByName(workload)
	if !ok {
		return fmt.Errorf("unknown workload %q", workload)
	}
	atk, ok := workloads.AttackByName(attackName)
	if !ok {
		return fmt.Errorf("unknown attack %q", attackName)
	}
	if attacked > devices {
		attacked = devices
	}
	prog, err := w.Assemble()
	if err != nil {
		return err
	}

	svc := fleet.NewService(fleet.Config{
		Workers:      workers,
		Shards:       shards,
		DisableCache: nocache,
	})
	defer svc.Close()
	progID, err := svc.RegisterProgram(prog, core.Config{}, [][]uint32{w.Input})
	if err != nil {
		return err
	}
	fmt.Printf("registered firmware %q as program %v\n", w.Name, progID)

	// Spin up the simulated fleet: one attest.Server per device on a
	// loopback port, each provisioned with its own key at "manufacture".
	var servers []*attest.Server
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	start := time.Now()
	for i := 0; i < devices; i++ {
		keys, err := sig.GenerateKeyStore(rand.Reader)
		if err != nil {
			return err
		}
		p := attest.NewProver(prog, core.Config{}, keys)
		armed := i < attacked
		if armed {
			p.Adversary = atk.Build(prog)
		}
		reg := attest.NewRegistry()
		reg.Register(p)
		srv := attest.NewServer(reg)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return err
		}
		servers = append(servers, srv)
		id := fleet.DeviceID(fmt.Sprintf("dev-%04d", i))
		if err := svc.Enroll(id, progID, keys.Public(), addr.String()); err != nil {
			return err
		}
	}
	fmt.Printf("enrolled %d devices (%d armed with %q) in %v\n",
		devices, attacked, atk.Name, time.Since(start).Round(time.Millisecond))

	if interval > 0 {
		fmt.Printf("scheduler sweeping every %v for %v\n", interval, duration)
		stop := svc.StartScheduler(interval)
		time.Sleep(duration)
		stop()
		for i, rep := range svc.Reports() {
			fmt.Printf("sweep %d: %v\n", i+1, rep)
		}
	} else {
		for i := 0; i < sweeps; i++ {
			reports, err := svc.Sweep()
			if err != nil {
				return err
			}
			for _, rep := range reports {
				fmt.Printf("sweep %d: %v\n", i+1, rep)
			}
		}
	}

	fmt.Println(svc.Metrics())
	if q := svc.Quarantined(); len(q) > 0 {
		fmt.Printf("quarantined devices:\n")
		for _, id := range q {
			st, _ := svc.Device(id)
			fmt.Printf("  %s: %v", id, st.LastClass)
			if len(st.LastFindings) > 0 {
				fmt.Printf(" (%s)", st.LastFindings[0])
			}
			fmt.Println()
		}
	}
	return nil
}
